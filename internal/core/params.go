// Package core implements Image-Domain Gridding, the primary
// contribution of the paper: the gridder kernel (Algorithm 1), the
// degridder kernel (Algorithm 2), the subgrid FFTs, and the adder and
// splitter, together with the parallel pipelines that combine them
// into full gridding and degridding passes.
//
// # Phase conventions
//
// Visibilities follow the measurement equation (Eq. 1):
//
//	V(u,v,w) = sum_lm B(l,m) exp(-2*pi*i*(u*l + v*m + w*n)),
//
// with uvw in wavelengths and n = 1 - sqrt(1 - l^2 - m^2). A subgrid
// anchored at grid pixel (X0, Y0) covers uv offsets
// uOff = (X0 + N~/2 - N/2)/ImageSize (likewise vOff), and the gridder
// accumulates every pixel with the phasor
//
//	Phi = exp(+2*pi*i*((u-uOff)*l + (v-vOff)*m + (w-wOff)*n))
//
// so that after the A-term/taper correction and the centered forward
// FFT the subgrid tile drops into the grid at (X0, Y0) with no further
// phase fixups. The degridder uses the conjugate phasor.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/sky"
	"repro/internal/taper"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// Params configures the IDG kernels.
type Params struct {
	// GridSize is the grid dimension in pixels.
	GridSize int
	// SubgridSize is the subgrid dimension N~ in pixels.
	SubgridSize int
	// ImageSize is the field-of-view extent in direction cosines.
	ImageSize float64
	// Frequencies are the channel center frequencies in Hz.
	Frequencies []float64
	// Sincos selects the sine/cosine evaluator; nil selects
	// xmath.SincosFast (the SVML-medium-accuracy equivalent).
	Sincos xmath.SincosFunc
	// Taper is the image-domain window applied to every subgrid; nil
	// selects the prolate spheroidal used by the paper.
	Taper func(nu float64) float64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// DisableBatching selects the straightforward reference kernels
	// instead of the batch-blocked ones (used by the ablation
	// benchmarks; the results are identical to rounding).
	DisableBatching bool
	// DisablePhasorRecurrence forces one sine/cosine evaluation per
	// (pixel, time step, channel) even when the channel spacing is
	// uniform, instead of the phasor rotation recurrence (used by the
	// ablation benchmarks; the results are identical to within
	// xmath.PhasorErrorBound).
	DisablePhasorRecurrence bool
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	switch {
	case p.GridSize < 2:
		return fmt.Errorf("core: grid size %d too small", p.GridSize)
	case p.SubgridSize < 2 || p.SubgridSize%2 != 0:
		return fmt.Errorf("core: subgrid size %d must be even and >= 2", p.SubgridSize)
	case p.SubgridSize > p.GridSize:
		return fmt.Errorf("core: subgrid %d exceeds grid %d", p.SubgridSize, p.GridSize)
	case p.ImageSize <= 0:
		return fmt.Errorf("core: image size %g must be positive", p.ImageSize)
	case len(p.Frequencies) == 0:
		return fmt.Errorf("core: no frequencies")
	}
	for i, f := range p.Frequencies {
		if f <= 0 {
			return fmt.Errorf("core: frequency %d not positive: %g", i, f)
		}
	}
	return nil
}

func (p *Params) workers() int {
	if p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// Kernels holds the precomputed state shared by all kernel
// invocations: per-pixel direction cosines, the taper map, wavenumber
// scales, and the subgrid FFT plan. Kernels is safe for concurrent
// use once built.
type Kernels struct {
	params Params

	// Per-pixel tables for the subgrid, indexed y*N~+x.
	l, m, n []float64
	taper   []float64

	// scale[c] = 2*pi * Frequencies[c] / c0 converts a phase index in
	// meters to radians for channel c.
	scale []float64

	// Phasor recurrence state: when the channel frequencies are
	// uniformly spaced (detected once here), the per-channel phase is
	// affine in the channel index and the batched kernels replace
	// per-channel sincos with rotations by dscale (radians per meter
	// per channel). Non-uniform plans fall back to the direct path.
	uniformScale bool
	dscale       float64
	rotator      xmath.PhasorRotator

	sincos xmath.SincosFunc
	sgFFT  *fft.Plan2D

	// Per-worker buffer pools of the pipeline hot path (see
	// scratch.go). Both reach a steady state with zero allocations per
	// work item.
	scratchPool sync.Pool
	subgridPool sync.Pool
}

// NewKernels precomputes the kernel state for the given parameters.
func NewKernels(params Params) (*Kernels, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	k := &Kernels{params: params}
	sg := params.SubgridSize
	k.l = make([]float64, sg*sg)
	k.m = make([]float64, sg*sg)
	k.n = make([]float64, sg*sg)
	pixel := params.ImageSize / float64(sg)
	for y := 0; y < sg; y++ {
		mv := float64(y-sg/2) * pixel
		for x := 0; x < sg; x++ {
			lv := float64(x-sg/2) * pixel
			i := y*sg + x
			k.l[i] = lv
			k.m[i] = mv
			k.n[i] = sky.N(lv, mv)
		}
	}
	tf := params.Taper
	if tf == nil {
		tf = taper.Spheroidal
	}
	k.taper = taper.Window2D(sg, tf)
	k.scale = make([]float64, len(params.Frequencies))
	for c, f := range params.Frequencies {
		k.scale[c] = 2 * 3.141592653589793 * f / uvwsim.SpeedOfLight
	}
	k.sincos = params.Sincos
	if k.sincos == nil {
		k.sincos = xmath.SincosFast
	}
	// Detect uniform channel spacing once: the recurrence kernels only
	// engage when the per-channel phase step is constant. The relative
	// tolerance is tight (1e-12 of the band spread) so that treating a
	// nearly-uniform plan as uniform could never move a phase by more
	// than ~1e-10 rad over the kernels' argument range.
	if df, ok := xmath.UniformSpacing(params.Frequencies, 1e-12); ok && !params.DisablePhasorRecurrence {
		k.uniformScale = true
		k.dscale = 2 * math.Pi * df / uvwsim.SpeedOfLight
	}
	k.rotator = xmath.PhasorRotator{Sincos: k.sincos}
	k.sgFFT = fft.NewPlan2D(sg, sg)
	k.scratchPool.New = func() any { return new(scratch) }
	k.subgridPool.New = func() any { return grid.NewSubgrid(sg, 0, 0) }
	return k, nil
}

// Params returns a copy of the kernel parameters.
func (k *Kernels) Params() Params { return k.params }

// uvOffset returns the uv offset of a subgrid anchored at (x0, y0), in
// wavelengths.
func (k *Kernels) uvOffset(x0, y0 int) (uOff, vOff float64) {
	n, sg := k.params.GridSize, k.params.SubgridSize
	uOff = float64(x0+sg/2-n/2) / k.params.ImageSize
	vOff = float64(y0+sg/2-n/2) / k.params.ImageSize
	return uOff, vOff
}
