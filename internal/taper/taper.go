// Package taper provides the anti-aliasing tapering functions applied
// to the subgrids in the image domain. The paper uses the prolate
// spheroidal wave function ("such as a spheroidal, which is used in our
// case", Section IV); this package implements the classic Schwab
// rational approximation of the zeroth-order prolate spheroidal
// (m = 6, alpha = 1) used across radio astronomy (AIPS, casacore, the
// ASTRON IDG implementation), plus a Kaiser-Bessel alternative used by
// the ablation benchmarks.
package taper

import (
	"fmt"
	"math"
)

// Spheroidal evaluates the prolate spheroidal taper at |nu| <= 1,
// where nu is the fractional distance from the image center (nu = 0)
// to the image edge (nu = 1). Values outside [-1, 1] return 0.
func Spheroidal(nu float64) float64 {
	nu = math.Abs(nu)
	// Schwab's two-interval rational approximation.
	var (
		p   [5]float64
		q   [3]float64
		end float64
	)
	switch {
	case nu < 0.75:
		p = [5]float64{8.203343e-2, -3.644705e-1, 6.278660e-1, -5.335581e-1, 2.312756e-1}
		q = [3]float64{1.0, 8.212018e-1, 2.078043e-1}
		end = 0.75
	case nu <= 1.0:
		p = [5]float64{4.028559e-3, -3.697768e-2, 1.021332e-1, -1.201436e-1, 6.412774e-2}
		q = [3]float64{1.0, 9.599102e-1, 2.918724e-1}
		end = 1.0
	default:
		return 0
	}
	nusq := nu * nu
	del := nusq - end*end
	delPow := del
	top := p[0]
	for k := 1; k < 5; k++ {
		top += p[k] * delPow
		delPow *= del
	}
	bot := q[0]
	delPow = del
	for k := 1; k < 3; k++ {
		bot += q[k] * delPow
		delPow *= del
	}
	if bot == 0 {
		return 0
	}
	return (1 - nusq) * (top / bot)
}

// KaiserBessel evaluates a Kaiser-Bessel taper with shape parameter
// beta at |nu| <= 1 (0 outside), normalized to 1 at nu = 0.
func KaiserBessel(nu, beta float64) float64 {
	nu = math.Abs(nu)
	if nu > 1 {
		return 0
	}
	return besselI0(beta*math.Sqrt(1-nu*nu)) / besselI0(beta)
}

// besselI0 is the modified Bessel function of the first kind, order 0,
// via the Abramowitz & Stegun polynomial approximations (9.8.1/9.8.2).
func besselI0(x float64) float64 {
	ax := math.Abs(x)
	if ax < 3.75 {
		t := x / 3.75
		t *= t
		return 1 + t*(3.5156229+t*(3.0899424+t*(1.2067492+
			t*(0.2659732+t*(0.0360768+t*0.0045813)))))
	}
	t := 3.75 / ax
	return math.Exp(ax) / math.Sqrt(ax) *
		(0.39894228 + t*(0.01328592+t*(0.00225319+t*(-0.00157565+
			t*(0.00916281+t*(-0.02057706+t*(0.02635537+
				t*(-0.01647633+t*0.00392377))))))))
}

// Window2D builds an n x n image-domain taper map from the 1-D window
// f: out[y*n+x] = f(nu(x)) * f(nu(y)) with nu = (i - n/2) / (n/2).
func Window2D(n int, f func(nu float64) float64) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("taper: window size %d too small", n))
	}
	line := make([]float64, n)
	half := float64(n) / 2
	for i := 0; i < n; i++ {
		line[i] = f(float64(i-n/2) / half)
	}
	out := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			out[y*n+x] = line[y] * line[x]
		}
	}
	return out
}

// SpheroidalSubgrid returns the spheroidal taper map for an n x n
// subgrid, the map applied by apply_spheroidal in Algorithms 1 and 2.
func SpheroidalSubgrid(n int) []float64 {
	return Window2D(n, Spheroidal)
}

// CorrectionMap returns the map that undoes the taper in the final
// image: 1/taper where the taper is above floor, 0 outside (those
// pixels carry no usable signal and are conventionally blanked).
func CorrectionMap(t []float64, floor float64) []float64 {
	out := make([]float64, len(t))
	for i, v := range t {
		if v > floor {
			out[i] = 1 / v
		}
	}
	return out
}
