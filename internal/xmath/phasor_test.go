package xmath

import (
	"math"
	"math/rand"
	"testing"
)

// maxFillError runs one Fill and returns the maximum absolute
// deviation of either component from the libm reference.
func maxFillError(r PhasorRotator, n int, base, delta float64) float64 {
	sin := make([]float64, n)
	cos := make([]float64, n)
	r.Fill(sin, cos, base, delta)
	maxErr := 0.0
	for k := 0; k < n; k++ {
		sr, cr := math.Sincos(base + float64(k)*delta)
		if d := math.Abs(sin[k] - sr); d > maxErr {
			maxErr = d
		}
		if d := math.Abs(cos[k] - cr); d > maxErr {
			maxErr = d
		}
	}
	return maxErr
}

// TestPhasorRotatorWithinDocumentedBound is the property test of the
// recurrence: on random non-uniform (base, delta) pairs spanning the
// kernels' argument range, the recurrence seeded by SincosAccurate
// stays within PhasorErrorBound of the reference path for the default
// re-sync interval.
func TestPhasorRotatorWithinDocumentedBound(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	r := PhasorRotator{Sincos: SincosAccurate}
	for trial := 0; trial < 500; trial++ {
		base := (rnd.Float64()*2 - 1) * kernelArgRange
		delta := (rnd.Float64()*2 - 1) * 10
		n := 1 + rnd.Intn(3*DefaultPhasorResync) // spans several re-syncs
		maxPhase := math.Abs(base) + float64(n)*math.Abs(delta)
		bound := PhasorErrorBound(0, maxPhase)
		if err := maxFillError(r, n, base, delta); err > bound {
			t.Fatalf("recurrence error %g exceeds documented bound %g (base=%g delta=%g n=%d)",
				err, bound, base, delta, n)
		}
	}
}

// TestPhasorRotatorDriftBound checks the analytic per-step drift bound
// at a re-sync interval much longer than the default: the observed
// drift must stay below PhasorDriftBound(k) plus the seed evaluation
// error.
func TestPhasorRotatorDriftBound(t *testing.T) {
	const k = 1024
	r := PhasorRotator{Sincos: SincosAccurate, Resync: k}
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		base := (rnd.Float64()*2 - 1) * kernelArgRange
		delta := (rnd.Float64()*2 - 1) * 2
		maxPhase := math.Abs(base) + float64(k)*math.Abs(delta)
		bound := PhasorErrorBound(k, maxPhase)
		if err := maxFillError(r, k, base, delta); err > bound {
			t.Fatalf("drift %g exceeds analytic bound %g at K=%d", err, bound, k)
		}
	}
}

// TestPhasorRotatorResyncSnapsBack verifies the re-sync entries are
// exact evaluations: with Resync=1 the recurrence degenerates to the
// direct path.
func TestPhasorRotatorResyncSnapsBack(t *testing.T) {
	r := PhasorRotator{Sincos: SincosAccurate, Resync: 1}
	if err := maxFillError(r, 100, 0.7, 0.3); err != 0 {
		t.Fatalf("Resync=1 must reproduce the evaluator exactly, got error %g", err)
	}
}

// TestPhasorRotatorApproximateSeed: seeding with SincosFast keeps the
// result within SincosFast's own error class plus the drift bound —
// the recurrence never changes the accuracy class of a kernel.
func TestPhasorRotatorApproximateSeed(t *testing.T) {
	r := PhasorRotator{Sincos: SincosFast}
	rnd := rand.New(rand.NewSource(5))
	fastErr := 4 * 6e-8 // the SincosFast test bound (4 float32 ulps)
	for trial := 0; trial < 100; trial++ {
		base := (rnd.Float64()*2 - 1) * kernelArgRange
		delta := (rnd.Float64()*2 - 1) * 5
		n := 2 * DefaultPhasorResync
		bound := fastErr + PhasorErrorBound(0, math.Abs(base)+float64(n)*math.Abs(delta))
		if err := maxFillError(r, n, base, delta); err > bound {
			t.Fatalf("fast-seeded recurrence error %g out of class", err)
		}
	}
}

func TestPhasorRotatorEmptyAndMismatch(t *testing.T) {
	var r PhasorRotator
	r.Fill(nil, nil, 1, 2) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched buffer lengths must panic")
		}
	}()
	r.Fill(make([]float64, 3), make([]float64, 4), 1, 2)
}

func TestUniformSpacing(t *testing.T) {
	uniform := []float64{150e6, 150.2e6, 150.4e6, 150.6e6}
	if d, ok := UniformSpacing(uniform, 1e-12); !ok || math.Abs(d-0.2e6) > 1e-3 {
		t.Fatalf("uniform channels not detected: d=%g ok=%v", d, ok)
	}
	nonuniform := []float64{150e6, 150.2e6, 150.5e6, 150.6e6}
	if _, ok := UniformSpacing(nonuniform, 1e-12); ok {
		t.Fatal("non-uniform channels detected as uniform")
	}
	if _, ok := UniformSpacing([]float64{150e6}, 1e-12); !ok {
		t.Fatal("single channel is trivially uniform")
	}
	if _, ok := UniformSpacing([]float64{150e6, 151e6}, 1e-12); !ok {
		t.Fatal("two channels are trivially uniform")
	}
	// Constant sequences (zero spread) are uniform.
	if d, ok := UniformSpacing([]float64{5, 5, 5}, 1e-12); !ok || d != 0 {
		t.Fatalf("constant sequence: d=%g ok=%v", d, ok)
	}
}

func BenchmarkPhasorFill(b *testing.B) {
	sin := make([]float64, 16)
	cos := make([]float64, 16)
	r := PhasorRotator{Sincos: SincosFast}
	for i := 0; i < b.N; i++ {
		r.Fill(sin, cos, float64(i)*0.37, 0.11)
	}
	sinkFloat = sin[15] + cos[15]
}

func BenchmarkPhasorDirect(b *testing.B) {
	sin := make([]float64, 16)
	cos := make([]float64, 16)
	for i := 0; i < b.N; i++ {
		base := float64(i) * 0.37
		for c := range sin {
			sin[c], cos[c] = SincosFast(base + float64(c)*0.11)
		}
	}
	sinkFloat = sin[15] + cos[15]
}
