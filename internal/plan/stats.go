package plan

import (
	"fmt"
	"math"

	"repro/internal/uvwsim"
)

// Stats summarizes a plan with the quantities the performance model
// consumes: the paper derives its exact operation counts from these.
type Stats struct {
	// NrSubgrids is the number of work items (subgrids).
	NrSubgrids int
	// NrGriddedVisibilities is the number of visibilities covered.
	NrGriddedVisibilities int64
	// NrDroppedVisibilities counts visibilities off the grid.
	NrDroppedVisibilities int64
	// NrTimestepSubgridPairs is sum over items of NrTimesteps; the
	// per-pixel phase-index work scales with it.
	NrTimestepSubgridPairs int64
	// NrVisibilityPixelPairs is sum over items of
	// NrTimesteps*NrChannels*SubgridSize^2: each pair costs one
	// sincos plus ~17 real FMAs in Algorithms 1 and 2.
	NrVisibilityPixelPairs int64
	// AvgTimestepsPerSubgrid is the mean T~ per work item.
	AvgTimestepsPerSubgrid float64
	// MaxTimestepsPerItem is the largest T~ in the plan.
	MaxTimestepsPerItem int
}

// Stats computes summary statistics of the plan.
func (p *Plan) Stats() Stats {
	var s Stats
	s.NrSubgrids = len(p.Items)
	s.NrDroppedVisibilities = int64(p.DroppedVisibilities)
	sg2 := int64(p.SubgridSize) * int64(p.SubgridSize)
	for i := range p.Items {
		it := &p.Items[i]
		s.NrGriddedVisibilities += int64(it.NrVisibilities())
		s.NrTimestepSubgridPairs += int64(it.NrTimesteps)
		s.NrVisibilityPixelPairs += int64(it.NrVisibilities()) * sg2
		if it.NrTimesteps > s.MaxTimestepsPerItem {
			s.MaxTimestepsPerItem = it.NrTimesteps
		}
	}
	if s.NrSubgrids > 0 {
		s.AvgTimestepsPerSubgrid = float64(s.NrTimestepSubgridPairs) / float64(s.NrSubgrids)
	}
	return s
}

// Validate checks the plan invariants against the tracks it was built
// from: every work item's visibilities (plus kernel support) must lie
// inside its subgrid, subgrids must lie inside the grid, time blocks
// must not overlap, A-term slots must be uniform within an item, and
// every non-dropped visibility must be covered exactly once.
// It returns the number of covered visibilities.
func (p *Plan) ValidateCoverage(tracks [][]uvwsim.UVW) (int64, error) {
	covered := make(map[[3]int]bool)
	n, sg := p.GridSize, p.SubgridSize
	sup := float64(p.KernelSupport)
	for idx := range p.Items {
		it := &p.Items[idx]
		if it.X0 < 0 || it.Y0 < 0 || it.X0+sg > n || it.Y0+sg > n {
			return 0, fmt.Errorf("plan: item %d subgrid (%d,%d) outside grid", idx, it.X0, it.Y0)
		}
		if p.MaxTimestepsPerSubgrid > 0 && it.NrTimesteps > p.MaxTimestepsPerSubgrid {
			return 0, fmt.Errorf("plan: item %d exceeds Tmax: %d", idx, it.NrTimesteps)
		}
		for t := it.TimeStart; t < it.TimeStart+it.NrTimesteps; t++ {
			if got := p.aTermSlot(t); got != it.ATermSlot {
				return 0, fmt.Errorf("plan: item %d mixes A-term slots (%d vs %d)", idx, got, it.ATermSlot)
			}
			coord := tracks[it.Baseline][t]
			for c := it.Channel0; c < it.Channel0+it.NrChannels; c++ {
				key := [3]int{it.Baseline, t, c}
				if covered[key] {
					return 0, fmt.Errorf("plan: visibility (%d,%d,%d) covered twice", it.Baseline, t, c)
				}
				covered[key] = true
				u, v := p.uvPixel(coord, p.Frequencies[c])
				ui := u + float64(n/2)
				vi := v + float64(n/2)
				if ui < float64(it.X0)+sup || ui > float64(it.X0+sg-1)-sup ||
					vi < float64(it.Y0)+sup || vi > float64(it.Y0+sg-1)-sup {
					return 0, fmt.Errorf("plan: visibility (%d,%d,%d) at (%.1f,%.1f) outside subgrid (%d,%d)",
						it.Baseline, t, c, ui, vi, it.X0, it.Y0)
				}
				if p.WStepLambda > 0 {
					w := coord.W * p.Frequencies[c] / uvwsim.SpeedOfLight
					if math.Abs(w-it.WOffset) > p.WStepLambda {
						return 0, fmt.Errorf("plan: visibility (%d,%d,%d) w=%.1f too far from plane %.1f",
							it.Baseline, t, c, w, it.WOffset)
					}
				}
			}
		}
	}
	want := int64(len(tracks))*int64(len(tracks[0]))*int64(len(p.Frequencies)) - int64(p.DroppedVisibilities)
	if int64(len(covered)) != want {
		return 0, fmt.Errorf("plan: covered %d visibilities, want %d", len(covered), want)
	}
	return int64(len(covered)), nil
}
