package xmath

// CvtF64F32 narrows src into dst element-wise (dst[i] = float32(src[i])),
// IEEE round-to-nearest-even — bitwise identical to the Go conversion.
// The two slices must have equal length. On amd64 with AVX the bulk of
// the work runs four elements per VCVTPD2PS instruction; the kernel
// hot paths narrow whole phasor blocks in one call instead of paying a
// scalar convert per element.
func CvtF64F32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("xmath: CvtF64F32 length mismatch")
	}
	n := len(src)
	i := 0
	if hasCvtASM && hasAVX2FMA && n >= 4 {
		nq := n / 4
		cvtQuadsPDPS(&dst[0], &src[0], nq)
		i = 4 * nq
	}
	for ; i < n; i++ {
		dst[i] = float32(src[i])
	}
}
