package fft

import (
	"math/cmplx"
	"sync"
	"testing"
)

func TestCachedPlanIsShared(t *testing.T) {
	a := CachedPlan(48)
	b := CachedPlan(48)
	if a != b {
		t.Fatal("cache returned distinct plans for the same size")
	}
	if CachedPlan(64) == a {
		t.Fatal("different sizes must get different plans")
	}
}

func TestCachedPlan2DIsShared(t *testing.T) {
	a := CachedPlan2D(24, 24)
	b := CachedPlan2D(24, 24)
	if a != b {
		t.Fatal("cache returned distinct 2D plans")
	}
	if CachedPlan2D(24, 32) == a {
		t.Fatal("different shapes must get different plans")
	}
}

func TestCachedPlanConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	plans := make([]*Plan2D, 16)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i] = CachedPlan2D(36, 36)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(plans); i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent callers received distinct plans")
		}
	}
}

func TestCachedPlanTransformsCorrectly(t *testing.T) {
	p := CachedPlan(24)
	x := make([]complex128, 24)
	x[0] = 1
	p.Forward(x)
	for _, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatal("cached plan broken")
		}
	}
}
