//go:build amd64

package core

import "repro/internal/xmath"

// vectorKernels gates the hand-vectorized (AVX2+FMA) float64 kernel
// loops in kernels_amd64.s. Detected once at startup; the pure-Go
// generic kernels remain the reference and the fallback (and the only
// float32 path).
var vectorKernels = xmath.HasAVX2FMA()

// rotAccQuads is the gridder's fused rotate-and-accumulate channel
// loop, four channels per iteration; see kernels_amd64.s and
// gridTileVec for the layout contract.
//
//go:noescape
func rotAccQuads(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float64, nq int, ph *float64)

// conjAccQuads is the degridder's conjugate accumulation pixel loop,
// four pixels per iteration.
//
//go:noescape
func conjAccQuads(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float64, nq int)

// rotQuads advances four per-pixel phasors per iteration by their
// per-pixel delta phasors (the degridder's rotation pass).
//
//go:noescape
func rotQuads(phRe, phIm, dRe, dIm *float64, nq int)
