// Package faulttol is the fault-tolerance layer of the IDG pipelines.
// Real interferometer data is riddled with RFI-corrupted samples, and
// a production gridding service cannot let one bad work item take down
// a whole imaging run: this package defines the error taxonomy shared
// by the pipelines (bad input, kernel panic, cancellation), the
// per-work-item failure policy (fail fast, retry, skip-and-flag), the
// panic-isolating runner that converts a crashed kernel into a typed
// error, and the degradation report that accounts for every visibility
// dropped under graceful degradation.
package faulttol

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plan"
)

// Sentinel errors classifying work-item failures. Wrapped errors
// always match via errors.Is.
var (
	// ErrBadInput marks deterministic input problems (non-finite
	// visibilities, mismatched dimensions); retrying cannot help.
	ErrBadInput = errors.New("faulttol: bad input")
	// ErrKernelPanic marks a panic recovered from a kernel or worker;
	// possibly transient, so retry policies apply.
	ErrKernelPanic = errors.New("faulttol: kernel panic")
	// ErrCanceled marks a run aborted by context cancellation or
	// deadline expiry.
	ErrCanceled = errors.New("faulttol: canceled")
)

// Policy selects what the pipeline does with a failing work item.
type Policy int

const (
	// FailFast aborts the whole run on the first item failure
	// (the pre-fault-tolerance behavior, minus the crash).
	FailFast Policy = iota
	// Retry re-runs a failed item up to Config.MaxRetries times and
	// aborts the run if it still fails.
	Retry
	// SkipAndFlag drops failing items (after any retries), records
	// them in the degradation report, and lets the run complete.
	SkipAndFlag
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case Retry:
		return "retry"
	case SkipAndFlag:
		return "skip-and-flag"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name (as printed by String) back.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fail-fast", "failfast":
		return FailFast, nil
	case "retry":
		return Retry, nil
	case "skip-and-flag", "skip":
		return SkipAndFlag, nil
	}
	return FailFast, fmt.Errorf("faulttol: unknown policy %q", s)
}

// Hook runs before every work-item attempt when set in Config. It is
// the seam the fault-injection harness uses: a hook may panic (the
// runner recovers it like a kernel panic) or delay. attempt is
// 1-based.
type Hook func(item plan.WorkItem, attempt int)

// Config selects the failure policy of one pipeline run.
type Config struct {
	// Policy is the per-item failure disposition.
	Policy Policy
	// MaxRetries is the number of re-attempts per failed item under
	// Retry (default 1) and SkipAndFlag (default 0). Bad-input
	// failures are never retried; they are deterministic.
	MaxRetries int
	// MaxErrors caps the per-item errors kept in the report
	// (default 16); the counts are always exact.
	MaxErrors int
	// Hook, when non-nil, runs before every item attempt inside the
	// recovery scope. Used by fault injection; nil in production.
	Hook Hook
	// RetryBackoff is the base delay before the first re-attempt of a
	// failed item; each further re-attempt doubles it (deterministic
	// exponential backoff, no jitter — reproducibility beats
	// thundering-herd avoidance in a single-process pipeline). 0
	// retries immediately (the pre-backoff behavior).
	RetryBackoff time.Duration
	// RetryBudget caps the total time one pipeline run may spend in
	// backoff sleeps across all items and workers. Once spent, failed
	// items stop retrying and take their policy's terminal path
	// (abort or skip). 0 means no cap.
	RetryBudget time.Duration
}

// Attempts returns the total attempts the config grants one item.
func (c Config) Attempts() int {
	if c.MaxRetries > 0 {
		return 1 + c.MaxRetries
	}
	if c.Policy == Retry {
		return 2
	}
	return 1
}

// BackoffDelay returns the deterministic exponential backoff before
// the given 1-based attempt: RetryBackoff before attempt 2, doubling
// for each later attempt, 0 when backoff is disabled or for the first
// attempt.
func (c Config) BackoffDelay(attempt int) time.Duration {
	if c.RetryBackoff <= 0 || attempt < 2 {
		return 0
	}
	shift := attempt - 2
	if shift > 20 { // cap the doubling; beyond ~1e6x the budget rules anyway
		shift = 20
	}
	return c.RetryBackoff << shift
}

// BackoffBudget meters the total backoff time of one pipeline run
// against Config.RetryBudget. Safe for concurrent use by the worker
// pool: the budget is a shared atomic, so however chunks are
// scheduled, the run never sleeps more than RetryBudget in aggregate.
type BackoffBudget struct {
	unlimited bool
	remaining atomic.Int64 // nanoseconds
	exhausted atomic.Bool
}

// NewBackoffBudget builds the run-level budget for a config.
func NewBackoffBudget(c Config) *BackoffBudget {
	b := &BackoffBudget{unlimited: c.RetryBudget <= 0}
	b.remaining.Store(c.RetryBudget.Nanoseconds())
	return b
}

// Sleep blocks for the backoff delay d and reports whether the
// retry should proceed. It returns false — without sleeping the full
// d — when the run budget is already spent or ctx is done, so callers
// stop retrying the moment patience runs out. A zero d is free and
// always proceeds.
func (b *BackoffBudget) Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if ctx.Err() != nil {
		return false
	}
	sleep := d
	if !b.unlimited {
		// Deduct the full delay deterministically; sleep only what was
		// actually left so the run never overshoots the budget.
		left := b.remaining.Add(-d.Nanoseconds()) + d.Nanoseconds()
		if left <= 0 {
			b.exhausted.Store(true)
			return false
		}
		if left < sleep.Nanoseconds() {
			sleep = time.Duration(left)
		}
	}
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Exhausted reports whether any Sleep was refused because the budget
// ran out.
func (b *BackoffBudget) Exhausted() bool { return b.exhausted.Load() }

// ItemError is the typed per-work-item failure: which visibility block
// failed, how often it was attempted, and the underlying cause.
type ItemError struct {
	// Baseline, TimeStart and Channel0 identify the work item's
	// visibility block.
	Baseline, TimeStart, Channel0 int
	// Attempts is the number of attempts made.
	Attempts int
	// Err is the underlying cause (wraps a sentinel).
	Err error
}

// Error formats the failure.
func (e *ItemError) Error() string {
	return fmt.Sprintf("work item (baseline %d, t0 %d, ch0 %d) failed after %d attempt(s): %v",
		e.Baseline, e.TimeStart, e.Channel0, e.Attempts, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *ItemError) Unwrap() error { return e.Err }

// Run executes fn, converting a panic into an error: a panic value
// that already wraps ErrBadInput is passed through as that error,
// anything else becomes an ErrKernelPanic.
func Run(fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok && errors.Is(e, ErrBadInput) {
				err = e
				return
			}
			err = fmt.Errorf("%w: %v", ErrKernelPanic, rec)
		}
	}()
	return fn()
}

// Canceled wraps a context error so it matches both ErrCanceled and
// the original context sentinel.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Report is the degradation report of one pipeline run under
// SkipAndFlag: exact counts of processed, retried and skipped work
// items, the visibilities dropped with them, and a bounded sample of
// the per-item errors. Safe for concurrent use by the worker pool.
type Report struct {
	mu        sync.Mutex
	maxErrors int

	// ItemsProcessed counts work items that completed.
	ItemsProcessed int
	// ItemsRetried counts items that completed only after a retry.
	ItemsRetried int
	// ItemsSkipped counts items dropped under SkipAndFlag.
	ItemsSkipped int
	// DroppedVisibilities is the exact number of visibilities the
	// skipped items covered.
	DroppedVisibilities int64
	// ItemErrors samples up to MaxErrors skipped-item failures.
	ItemErrors []*ItemError
	// Notes records run-level degradation events that are not tied to
	// one work item: checkpoint fallbacks, clean restarts, retry-budget
	// exhaustion. Notes never affect Degraded().
	Notes []string
}

// NewReport allocates a report for the given config.
func NewReport(cfg Config) *Report {
	max := cfg.MaxErrors
	if max <= 0 {
		max = 16
	}
	return &Report{maxErrors: max}
}

// RecordSuccess counts one completed item.
func (r *Report) RecordSuccess(retried bool) {
	r.mu.Lock()
	r.ItemsProcessed++
	if retried {
		r.ItemsRetried++
	}
	r.mu.Unlock()
}

// RecordSkip counts one dropped item and its visibilities.
func (r *Report) RecordSkip(e *ItemError, droppedVis int64) {
	r.mu.Lock()
	r.ItemsSkipped++
	r.DroppedVisibilities += droppedVis
	if len(r.ItemErrors) < r.maxErrors {
		r.ItemErrors = append(r.ItemErrors, e)
	}
	r.mu.Unlock()
}

// AddNote appends a run-level degradation note.
func (r *Report) AddNote(note string) {
	r.mu.Lock()
	r.Notes = append(r.Notes, note)
	r.mu.Unlock()
}

// ReportState is the serializable core of a Report: the exact counts,
// without the bounded error sample or notes. Checkpoints persist it so
// a resumed run's report continues from the interrupted run's counts.
type ReportState struct {
	ItemsProcessed      int
	ItemsRetried        int
	ItemsSkipped        int
	DroppedVisibilities int64
}

// State snapshots the report's counts.
func (r *Report) State() ReportState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReportState{
		ItemsProcessed:      r.ItemsProcessed,
		ItemsRetried:        r.ItemsRetried,
		ItemsSkipped:        r.ItemsSkipped,
		DroppedVisibilities: r.DroppedVisibilities,
	}
}

// RestoreState overwrites the report's counts with a checkpointed
// state (the sampled ItemErrors of the interrupted run are not
// persisted and stay empty).
func (r *Report) RestoreState(st ReportState) {
	r.mu.Lock()
	r.ItemsProcessed = st.ItemsProcessed
	r.ItemsRetried = st.ItemsRetried
	r.ItemsSkipped = st.ItemsSkipped
	r.DroppedVisibilities = st.DroppedVisibilities
	r.mu.Unlock()
}

// Merge folds other into r (used when a run spans several pipeline
// invocations, e.g. W-stacking layers or major cycles).
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ItemsProcessed += other.ItemsProcessed
	r.ItemsRetried += other.ItemsRetried
	r.ItemsSkipped += other.ItemsSkipped
	r.DroppedVisibilities += other.DroppedVisibilities
	for _, e := range other.ItemErrors {
		if len(r.ItemErrors) >= r.maxErrors {
			break
		}
		r.ItemErrors = append(r.ItemErrors, e)
	}
	r.Notes = append(r.Notes, other.Notes...)
}

// Degraded reports whether any work was dropped.
func (r *Report) Degraded() bool { return r.ItemsSkipped > 0 }

// String renders a one-line degradation summary.
func (r *Report) String() string {
	return fmt.Sprintf("faulttol: %d items ok (%d retried), %d skipped, %d visibilities dropped",
		r.ItemsProcessed, r.ItemsRetried, r.ItemsSkipped, r.DroppedVisibilities)
}
