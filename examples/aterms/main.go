// A-terms: demonstrate the paper's central functional claim —
// IDG applies direction-dependent corrections (here: per-station
// ionospheric phase screens) in the image domain at negligible cost.
// The example corrupts the simulated visibilities with time-varying
// phase screens, images them with and without the matching A-term
// correction, and compares source recovery and runtimes.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/aterm"
	"repro/internal/xmath"

	"repro"
)

func main() {
	cfg := repro.DefaultObservation()
	cfg.NrStations = 12
	cfg.NrTimesteps = 128
	cfg.NrChannels = 4
	cfg.GridSize = 512
	cfg.GridMargin = 32
	cfg.ATermInterval = 32 // A-terms change 4 times over the run

	obs, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	pixel := obs.ImageSize / float64(cfg.GridSize)
	truth := repro.SkyModel{{L: 36 * pixel, M: 24 * pixel, I: 1}}

	// The ionosphere: per-station phase gradients that drift per
	// A-term slot. We use the internal provider directly so that the
	// data corruption and the correction provably match.
	screen := aterm.PhaseScreen{Strength: 30 / obs.ImageSize}

	// Corrupt the measurement: V = A_p B A_q^H phase (Eq. 1).
	freqs := cfg.Frequencies()
	sched := repro.ATermScheduler{UpdateInterval: cfg.ATermInterval}
	for b, bl := range obs.Vis.Baselines {
		for t := 0; t < obs.Vis.NrTimesteps; t++ {
			slot := sched.Slot(t)
			coord := obs.Vis.UVW[b][t]
			for c := 0; c < obs.Vis.NrChannels; c++ {
				sc := coord.Scale(freqs[c])
				obs.Vis.Data[b][t*obs.Vis.NrChannels+c] = truth.PredictWithATerms(
					sc.U, sc.V, sc.W,
					func(l, m float64) (xmath.Matrix2, xmath.Matrix2) {
						return screen.Evaluate(bl.P, slot, l, m),
							screen.Evaluate(bl.Q, slot, l, m)
					})
			}
		}
	}

	report := func(name string, prov repro.ATermProvider) float64 {
		img, err := obs.DirtyImage(context.Background(), prov)
		if err != nil {
			log.Fatal(err)
		}
		si := repro.StokesI(img)
		best := math.Inf(-1)
		bi := 0
		for i, v := range si {
			if v > best {
				best, bi = v, i
			}
		}
		fmt.Printf("%-28s peak %.4f Jy at (%d, %d)\n",
			name, best, bi%cfg.GridSize, bi/cfg.GridSize)
		return best
	}

	x, y := repro.LMToPixel(truth[0].L, truth[0].M, cfg.GridSize, obs.ImageSize)
	fmt.Printf("true source: 1.0000 Jy at (%d, %d)\n\n", x, y)
	raw := report("without A-term correction:", nil)
	corrected := report("with A-term correction:  ", screen)

	fmt.Printf("\nthe phase screens scatter %.0f%% of the source flux; ", 100*(1-raw/corrected))
	fmt.Println("IDG recovers it by applying")
	fmt.Println("the conjugate screens per subgrid pixel — a per-pixel 2x2 multiply, which is")
	fmt.Println("why the paper reports DDE corrections at negligible additional cost.")
}
