package flagging

import (
	"math"
	"testing"
)

// TestAllFlaggedBaseline pins the extreme of the re-flagging rule: a
// baseline whose every sample is already flagged contributes nothing
// to a later pass, no matter how corrupt its payload is.
func TestAllFlaggedBaseline(t *testing.T) {
	vs := testSet(t)
	nan := complex(math.NaN(), math.NaN())
	for i := range vs.Data[0] {
		for p := 0; p < 4; p++ {
			vs.Data[0][i][p] = nan
		}
	}
	first := Apply(vs, DefaultConfig())
	perBaseline := int64(vs.NrTimesteps * vs.NrChannels)
	if first.NonFinite != perBaseline {
		t.Fatalf("first pass flagged %d, want the whole baseline (%d)", first.NonFinite, perBaseline)
	}

	// Second pass with a stricter config: the dead baseline is skipped
	// outright, and only the healthy baseline feeds the amplitude cut.
	second := Apply(vs, Config{NonFinite: true, MaxAmplitude: 1})
	if second.NonFinite != 0 {
		t.Errorf("second pass re-counted %d non-finite samples", second.NonFinite)
	}
	if want := perBaseline; second.Clipped != want {
		t.Errorf("second pass clipped %d, want %d (all of baseline 1, amplitude sqrt2 > 1)",
			second.Clipped, want)
	}
	if want := 2 * perBaseline; second.Flagged != want {
		t.Errorf("total flagged %d, want %d", second.Flagged, want)
	}
	for i := 0; i < int(perBaseline); i++ {
		if !vs.Flags[0][i] {
			t.Fatalf("baseline 0 sample %d lost its flag", i)
		}
	}
}

// TestNaNEscapesAmplitudeOnlyDetector documents a sharp edge of
// amplitude clipping: maxAmplitude keeps the largest *comparable*
// magnitude, and every comparison against NaN is false, so a sample
// whose corrupt correlation is NaN slips through a MaxAmplitude-only
// config. Catching NaNs is the NonFinite detector's job — which is
// why DefaultConfig enables it.
func TestNaNEscapesAmplitudeOnlyDetector(t *testing.T) {
	vs := testSet(t)
	vs.Data[0][0][0] = complex(math.NaN(), 0)

	st := Apply(vs, Config{MaxAmplitude: 100})
	if st.Clipped != 0 || st.NewlyFlagged() != 0 {
		t.Fatalf("amplitude-only pass flagged %d samples, want 0: %+v", st.NewlyFlagged(), st)
	}
	if vs.Flagged(0, 0, 0) {
		t.Fatal("NaN sample unexpectedly flagged by the amplitude detector")
	}

	// The default config (NonFinite on) catches exactly that sample.
	if st := Apply(vs, DefaultConfig()); st.NonFinite != 1 {
		t.Fatalf("NonFinite pass flagged %d, want 1", st.NonFinite)
	}
	if !vs.Flagged(0, 0, 0) {
		t.Fatal("NaN sample still unflagged after the NonFinite pass")
	}
}

// TestInfStillClippedByAmplitude contrasts the NaN edge: an Inf
// component *is* caught by the amplitude cut (Hypot(Inf, x) = Inf
// compares greater than any threshold).
func TestInfStillClippedByAmplitude(t *testing.T) {
	vs := testSet(t)
	vs.Data[1][3][2] = complex(math.Inf(1), 0)
	st := Apply(vs, Config{MaxAmplitude: 100})
	if st.Clipped != 1 {
		t.Fatalf("Clipped = %d, want 1", st.Clipped)
	}
	if !vs.Flagged(1, 1, 0) {
		t.Fatal("Inf sample not flagged")
	}
}
