package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/plan"
)

// TestShardedAddSplitRaceSoak hammers one shared sharded grid with
// concurrent sharded adders and splitters — the mixed workload the
// shard locks exist for. Under -race this is the data-race soak; in
// any mode the integer-valued adds must sum exactly (a lost update
// cannot hide behind float reassociation) and every concurrent
// splitter copy must be coherent (integer pixels only, never a torn
// half-written row).
func TestShardedAddSplitRaceSoak(t *testing.T) {
	const gridSize, sgSize, adders, splitters = 128, 32, 4, 3
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	k, err := NewKernels(Params{
		GridSize: gridSize, SubgridSize: sgSize, ImageSize: 0.1,
		Frequencies: []float64{150e6}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := grid.NewSharded(grid.NewGrid(gridSize), 5)

	makeBatch := func(worker, value int) []*grid.Subgrid {
		batch := make([]*grid.Subgrid, 6)
		for i := range batch {
			s := grid.NewSubgrid(sgSize,
				(worker*17+i*13)%(gridSize-sgSize), (worker*29+i*7)%(gridSize-sgSize))
			for c := range s.Data {
				for j := range s.Data[c] {
					s.Data[c][j] = complex(float64(value), 0)
				}
			}
			batch[i] = s
		}
		return batch
	}

	var wg sync.WaitGroup
	for w := 0; w < adders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := makeBatch(w, 1)
			for r := 0; r < rounds; r++ {
				k.AdderSharded(batch, sh)
			}
		}(w)
	}
	bad := make(chan string, splitters)
	for w := 0; w < splitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]*grid.Subgrid, 4)
			for i := range dst {
				dst[i] = grid.NewSubgrid(sgSize,
					(w*11+i*19)%(gridSize-sgSize), (w*23+i*5)%(gridSize-sgSize))
			}
			for r := 0; r < rounds; r++ {
				k.SplitterSharded(sh, dst)
				for _, s := range dst {
					for c := range s.Data {
						for _, v := range s.Data[c] {
							if real(v) != float64(int(real(v))) || imag(v) != 0 {
								select {
								case bad <- "splitter read a non-integer pixel (torn write)":
								default:
								}
								return
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(bad)
	if msg, ok := <-bad; ok {
		t.Fatal(msg)
	}

	var total complex128
	for c := 0; c < grid.NrCorrelations; c++ {
		for _, v := range sh.Master().Data[c] {
			total += v
		}
	}
	want := complex(float64(grid.NrCorrelations*adders*rounds*6*sgSize*sgSize), 0)
	if total != want {
		t.Fatalf("concurrent sharded adds summed to %v, want %v (lost update)", total, want)
	}
	locks, contended := sh.LockStats()
	for i := range locks {
		if contended[i] > locks[i] {
			t.Fatalf("shard %d accounting: contended %d > locks %d", i, contended[i], locks[i])
		}
	}
}

// TestStreamedRaceSoakWithFaults runs the streaming scheduler with an
// observer attached and a deterministic panic hook corrupting a slice
// of the plan, twice concurrently onto independent sharded grids. It
// soaks every shared structure of the streamed path at once — chunk
// dispatch atomics, shard locks, the fault report, metric counters and
// the tracer ring — and then checks the degradation accounting still
// balances item-for-item.
func TestStreamedRaceSoakWithFaults(t *testing.T) {
	cfg := defaultScenarioConfig()
	if testing.Short() {
		cfg.nt = 32
	}
	sc := buildScenario(t, cfg)
	sc.fillFromModel(nil)

	victim := func(item plan.WorkItem) bool {
		return (item.Baseline*31+item.TimeStart*7+item.Channel0)%11 == 0
	}
	nVictims := 0
	for _, item := range sc.plan.Items {
		if victim(item) {
			nVictims++
		}
	}
	if nVictims == 0 {
		t.Fatal("fault selector hit no items; soak would be vacuous")
	}

	params := sc.kernels.Params()
	params.GridShards = 3
	params.MaxInflightChunks = 3
	params.StreamChunkItems = 4
	params.Workers = 4
	params.Observer = obs.New(0)
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	ft := faulttol.Config{
		Policy: faulttol.SkipAndFlag,
		Hook: func(item plan.WorkItem, attempt int) {
			if victim(item) {
				panic("soak: injected kernel panic")
			}
		},
	}

	const passes = 2
	var wg sync.WaitGroup
	reports := make([]*faulttol.Report, passes)
	errs := make([]error, passes)
	for i := 0; i < passes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := k.NewShardedGrid(grid.NewGrid(params.GridSize))
			_, reports[i], errs[i] = k.GridVisibilitiesStreamed(
				context.Background(), sc.plan, sc.vs, nil, sh, ft)
		}(i)
	}
	wg.Wait()

	for i := 0; i < passes; i++ {
		if errs[i] != nil {
			t.Fatalf("pass %d failed instead of degrading: %v", i, errs[i])
		}
		rep := reports[i]
		if rep.ItemsSkipped != nVictims {
			t.Fatalf("pass %d skipped %d items, selector hit %d", i, rep.ItemsSkipped, nVictims)
		}
		if rep.ItemsProcessed+rep.ItemsSkipped != len(sc.plan.Items) {
			t.Fatalf("pass %d accounting: %d processed + %d skipped != %d plan items",
				i, rep.ItemsProcessed, rep.ItemsSkipped, len(sc.plan.Items))
		}
	}
}
