// Sensitivity: a noisy observation imaged with different weighting
// schemes. Natural weighting maximizes point-source sensitivity
// (lowest image noise); uniform weighting trades sensitivity for a
// cleaner PSF. The example injects radiometer noise, images the field
// three ways and reports peak flux, image noise and the resulting
// signal-to-noise ratio — the quantity the paper's throughput numbers
// (Fig. 10) ultimately buy.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sky"

	"repro"
)

func main() {
	cfg := repro.DefaultObservation()
	cfg.NrStations = 20
	cfg.NrTimesteps = 128
	cfg.NrChannels = 4
	cfg.GridSize = 512
	cfg.GridMargin = 32

	const (
		flux  = 1.0
		sigma = 2.0 // per-visibility noise; SNR comes from averaging
	)

	type row struct {
		name   string
		scheme repro.WeightScheme
		robust float64
	}
	rows := []row{
		{"natural", repro.NaturalWeighting, 0},
		{"robust 0", repro.RobustWeighting, 0},
		{"uniform", repro.UniformWeighting, 0},
	}

	fmt.Printf("source: %.1f Jy; visibility noise sigma: %.1f Jy per component\n\n", flux, sigma)
	fmt.Printf("%-10s %10s %12s %8s\n", "weighting", "peak (Jy)", "noise (Jy)", "SNR")

	image := func(r row, withSource bool) (peak float64, si []float64, x, y int) {
		obs, err := cfg.Build()
		if err != nil {
			log.Fatal(err)
		}
		pix := obs.ImageSize / float64(cfg.GridSize)
		truth := repro.SkyModel{{L: 40 * pix, M: -24 * pix, I: flux}}
		if withSource {
			obs.FillFromModel(truth)
		}
		if err := obs.AddNoise(sigma, 2026); err != nil {
			log.Fatal(err)
		}
		w, err := obs.ComputeWeights(r.scheme, r.robust)
		if err != nil {
			log.Fatal(err)
		}
		total := obs.ApplyWeights(w)
		g, _, err := obs.GridAll(context.Background(), nil)
		if err != nil {
			log.Fatal(err)
		}
		n := cfg.GridSize
		img := core.GridToImage(g, 0)
		core.ScaleImage(img, float64(n*n)/total)
		core.ApplyTaperCorrection(img, obs.Kernels.TaperCorrection(n))
		si = sky.StokesI(img)
		x, y = repro.LMToPixel(truth[0].L, truth[0].M, n, obs.ImageSize)
		return si[y*n+x], si, x, y
	}

	for _, r := range rows {
		peak, _, x, y := image(r, true)
		// Measure the noise on a source-free realization so PSF
		// sidelobes do not contaminate the estimate.
		_, noiseImg, _, _ := image(r, false)
		n := cfg.GridSize
		inner := make([]float64, 0, (n/2)*(n/2))
		for yy := n / 4; yy < 3*n/4; yy++ {
			inner = append(inner, noiseImg[yy*n+n/4:yy*n+3*n/4]...)
		}
		rms := repro.ImageRMS(inner, n/2, x-n/4, y-n/4, 0)
		fmt.Printf("%-10s %10.4f %12.5f %8.1f\n", r.name, peak, rms, peak/rms)
	}

	fmt.Println("\nnatural weighting gives the best point-source SNR; uniform pays")
	fmt.Println("noise for resolution — the standard imaging trade-off.")
}
