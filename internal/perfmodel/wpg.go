package perfmodel

import (
	"fmt"

	"repro/internal/arch"
)

// This file models the W-projection comparison of Section VI-E /
// Fig. 16. WPG (Romein's GPU W-projection gridder) convolves every
// visibility with an N_W x N_W kernel; the paper measured it at
// roughly 28% of peak floating-point performance, with Merry's
// thread-coarsening improvements reaching up to 55%.

// WPGModel describes the modelled W-projection gridder.
type WPGModel struct {
	// Efficiency is the attained fraction of FMA peak (0.28 for the
	// paper's WPG measurement, 0.55 for the improved variant [21]).
	Efficiency float64
	// OverheadSecPerVis is the per-visibility fixed cost (uvw
	// handling, oversampled kernel index computation, accumulator
	// flushes); it bounds throughput for small kernels, where WPG's
	// arithmetic no longer dominates. Calibrated so that small-N_W
	// throughput saturates around 150 MVis/s on PASCAL, matching the
	// regime in which the paper reports IDG "significantly"
	// outperforming WPG.
	OverheadSecPerVis float64
}

// PaperWPG returns the WPG configuration measured in the paper.
func PaperWPG() WPGModel {
	return WPGModel{Efficiency: 0.28, OverheadSecPerVis: 1.0 / 150e6}
}

// ImprovedWPG returns Merry's thread-coarsened variant (best case).
func ImprovedWPG() WPGModel {
	return WPGModel{Efficiency: 0.55, OverheadSecPerVis: 1.0 / 150e6}
}

// FlopsPerVisibility returns the arithmetic cost of convolving one
// 4-correlation visibility with an N_W x N_W kernel (one complex
// multiply-add = 8 real flops per tap and correlation).
func (WPGModel) FlopsPerVisibility(nw int) float64 {
	return 8 * 4 * float64(nw) * float64(nw)
}

// ThroughputMVisPerSec returns the modelled WPG gridding throughput
// for kernel size nw on the platform.
func (m WPGModel) ThroughputMVisPerSec(p *arch.Platform, nw int) float64 {
	if nw < 1 {
		panic(fmt.Sprintf("perfmodel: invalid W-kernel size %d", nw))
	}
	flops := m.FlopsPerVisibility(nw)
	tArith := flops / (m.Efficiency * p.PeakTFlops * 1e12)
	t := tArith + m.OverheadSecPerVis
	return 1 / t / 1e6
}

// IDGThroughputMVisPerSec returns the modelled IDG gridding
// throughput for a given subgrid size on the platform, holding the
// rest of the dataset fixed (Fig. 16 plots IDG as horizontal lines:
// its cost does not depend on N_W, only on the chosen N~).
func IDGThroughputMVisPerSec(p *arch.Platform, d Dataset, subgridSize int) float64 {
	scaled := d
	scaled.SubgridSize = subgridSize
	g, _ := ThroughputMVisPerSec(p, scaled)
	return g
}

// Fig16Row is one x position of Fig. 16.
type Fig16Row struct {
	NW          int
	WPG         float64 // MVis/s, paper WPG
	WPGImproved float64 // MVis/s, Merry best case
	IDG         map[int]float64
}

// Fig16 evaluates the comparison on the given platform (PASCAL in the
// paper) for the given W-kernel sizes and IDG subgrid sizes.
func Fig16(p *arch.Platform, d Dataset, kernelSizes, subgridSizes []int) []Fig16Row {
	wpg := PaperWPG()
	improved := ImprovedWPG()
	idg := make(map[int]float64, len(subgridSizes))
	for _, sg := range subgridSizes {
		idg[sg] = IDGThroughputMVisPerSec(p, d, sg)
	}
	rows := make([]Fig16Row, 0, len(kernelSizes))
	for _, nw := range kernelSizes {
		rows = append(rows, Fig16Row{
			NW:          nw,
			WPG:         wpg.ThroughputMVisPerSec(p, nw),
			WPGImproved: improved.ThroughputMVisPerSec(p, nw),
			IDG:         idg,
		})
	}
	return rows
}
