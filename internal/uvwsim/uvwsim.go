// Package uvwsim synthesizes uvw baseline coordinates under earth
// rotation. It stands in for the SKA Science Data Processor "uvwsim"
// baseline coordinate generator referenced by the paper ([27]): given
// station positions, an observing latitude, a phase-center declination
// and an hour-angle range, it produces the uvw track of every baseline
// over time. Earth rotation is what turns each baseline into the
// elliptical uv tracks shown in Fig. 3 and Fig. 8 of the paper.
package uvwsim

import (
	"fmt"
	"math"

	"repro/internal/layout"
)

// SpeedOfLight is c in m/s, used to convert uvw in meters to
// wavelengths for a given frequency.
const SpeedOfLight = 299792458.0

// UVW is one baseline coordinate sample in meters.
type UVW struct {
	U, V, W float64
}

// Scale returns the coordinate expressed in wavelengths for frequency
// freq (Hz).
func (c UVW) Scale(freq float64) UVW {
	s := freq / SpeedOfLight
	return UVW{c.U * s, c.V * s, c.W * s}
}

// Baseline identifies an ordered station pair (P < Q).
type Baseline struct {
	P, Q int
}

// Simulator converts station layouts into per-baseline uvw tracks.
type Simulator struct {
	xyz       [][3]float64 // equatorial station coordinates, meters
	baselines []Baseline
	latitude  float64 // radians
	dec       float64 // phase-center declination, radians
	ha0       float64 // hour angle of the first sample, radians
	dha       float64 // hour angle step per integration, radians
}

// Options configures a Simulator.
type Options struct {
	// LatitudeDeg is the array latitude in degrees. The SKA1-low site
	// (Murchison, Western Australia) is at about -26.7 deg.
	LatitudeDeg float64
	// DeclinationDeg is the phase-center declination in degrees.
	DeclinationDeg float64
	// HourAngleStartDeg is the hour angle of the first time sample in
	// degrees (0 = transit).
	HourAngleStartDeg float64
	// IntegrationTime is the correlator dump time in seconds
	// (1 s in the paper's dataset).
	IntegrationTime float64
}

// DefaultOptions returns the observation geometry used by the
// benchmark dataset: SKA1-low site latitude, a southern source near
// zenith observed around transit with 1 s integrations.
func DefaultOptions() Options {
	return Options{
		LatitudeDeg:       -26.7,
		DeclinationDeg:    -30.0,
		HourAngleStartDeg: -17.0, // ~8192 s of observation centered on transit
		IntegrationTime:   1.0,
	}
}

// siderealRate is the earth rotation rate in radians per second of
// solar time (2*pi per sidereal day).
const siderealRate = 2 * math.Pi / 86164.0905

// New builds a Simulator for the given stations and observation
// geometry.
func New(stations []layout.Station, opts Options) *Simulator {
	if len(stations) < 2 {
		panic(fmt.Sprintf("uvwsim: need at least 2 stations, got %d", len(stations)))
	}
	if opts.IntegrationTime <= 0 {
		panic("uvwsim: integration time must be positive")
	}
	lat := opts.LatitudeDeg * math.Pi / 180
	s := &Simulator{
		latitude: lat,
		dec:      opts.DeclinationDeg * math.Pi / 180,
		ha0:      opts.HourAngleStartDeg * math.Pi / 180,
		dha:      siderealRate * opts.IntegrationTime,
	}
	sinLat, cosLat := math.Sincos(lat)
	s.xyz = make([][3]float64, len(stations))
	for i, st := range stations {
		// Local ENU -> equatorial XYZ (X toward HA=0 on the equator,
		// Y toward HA=-6h, Z toward the north celestial pole).
		s.xyz[i] = [3]float64{
			-sinLat*st.N + cosLat*st.U,
			st.E,
			cosLat*st.N + sinLat*st.U,
		}
	}
	s.baselines = make([]Baseline, 0, layout.NrBaselines(len(stations)))
	for p := 0; p < len(stations); p++ {
		for q := p + 1; q < len(stations); q++ {
			s.baselines = append(s.baselines, Baseline{p, q})
		}
	}
	return s
}

// Baselines returns the ordered list of station pairs.
func (s *Simulator) Baselines() []Baseline { return s.baselines }

// NrStations returns the number of stations.
func (s *Simulator) NrStations() int { return len(s.xyz) }

// HourAngle returns the hour angle (radians) of time sample t.
func (s *Simulator) HourAngle(t int) float64 {
	return s.ha0 + float64(t)*s.dha
}

// UVW returns the uvw coordinate in meters of baseline (p, q) at time
// sample t, following the standard synthesis-imaging rotation (e.g.
// Thompson, Moran & Swenson):
//
//	u =  sinH*Lx + cosH*Ly
//	v = -sinD*cosH*Lx + sinD*sinH*Ly + cosD*Lz
//	w =  cosD*cosH*Lx - cosD*sinH*Ly + sinD*Lz
func (s *Simulator) UVW(p, q, t int) UVW {
	lx := s.xyz[q][0] - s.xyz[p][0]
	ly := s.xyz[q][1] - s.xyz[p][1]
	lz := s.xyz[q][2] - s.xyz[p][2]
	sinH, cosH := math.Sincos(s.HourAngle(t))
	sinD, cosD := math.Sincos(s.dec)
	return UVW{
		U: sinH*lx + cosH*ly,
		V: -sinD*cosH*lx + sinD*sinH*ly + cosD*lz,
		W: cosD*cosH*lx - cosD*sinH*ly + sinD*lz,
	}
}

// BaselineTrack fills out with the uvw track of baseline b over nt
// consecutive time samples starting at sample t0 and returns it. If
// out is nil or too small a new slice is allocated.
func (s *Simulator) BaselineTrack(b Baseline, t0, nt int, out []UVW) []UVW {
	if cap(out) < nt {
		out = make([]UVW, nt)
	}
	out = out[:nt]
	for t := 0; t < nt; t++ {
		out[t] = s.UVW(b.P, b.Q, t0+t)
	}
	return out
}

// AllTracks computes the uvw tracks of every baseline for nt samples:
// result[b][t]. For the full paper dataset (11,175 baselines x 8,192
// steps) this allocates ~2.2 GB; benchmarks use scaled-down counts and
// the perf model works from closed-form counts instead.
func (s *Simulator) AllTracks(nt int) [][]UVW {
	out := make([][]UVW, len(s.baselines))
	for i, b := range s.baselines {
		out[i] = s.BaselineTrack(b, 0, nt, nil)
	}
	return out
}

// MaxUV returns the largest |u| or |v| in meters over all baselines at
// the given number of time samples; used to choose the image size so
// that all visibilities fall onto the grid.
func (s *Simulator) MaxUV(nt int) float64 {
	m := 0.0
	for _, b := range s.baselines {
		// Sampling the ends and middle of the track is enough for a
		// bound because the track is an ellipse arc, but be safe and
		// scan coarsely.
		step := nt / 16
		if step == 0 {
			step = 1
		}
		for t := 0; t < nt; t += step {
			c := s.UVW(b.P, b.Q, t)
			if a := math.Abs(c.U); a > m {
				m = a
			}
			if a := math.Abs(c.V); a > m {
				m = a
			}
		}
	}
	return m
}

// MaxW returns the largest |w| in meters over all baselines, sampled
// coarsely like MaxUV.
func (s *Simulator) MaxW(nt int) float64 {
	m := 0.0
	for _, b := range s.baselines {
		step := nt / 16
		if step == 0 {
			step = 1
		}
		for t := 0; t < nt; t += step {
			if a := math.Abs(s.UVW(b.P, b.Q, t).W); a > m {
				m = a
			}
		}
	}
	return m
}
