package sky

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/xmath"
)

func TestBrightnessOfUnpolarizedSource(t *testing.T) {
	s := PointSource{I: 2}
	b := s.Brightness()
	want := xmath.Matrix2{2, 0, 0, 2}
	if b.MaxAbsDiff(want) != 0 {
		t.Fatalf("brightness = %v", b)
	}
}

func TestBrightnessStokesRoundtrip(t *testing.T) {
	s := PointSource{I: 3, Q: 0.5, U: -0.25, V: 0.125}
	b := s.Brightness()
	// I = (XX+YY)/2, Q = (XX-YY)/2, U = Re(XY), V = Im(XY).
	if i := real(b[0]+b[3]) / 2; math.Abs(i-3) > 1e-15 {
		t.Fatalf("I = %g", i)
	}
	if q := real(b[0]-b[3]) / 2; math.Abs(q-0.5) > 1e-15 {
		t.Fatalf("Q = %g", q)
	}
	if u := real(b[1]); math.Abs(u+0.25) > 1e-15 {
		t.Fatalf("U = %g", u)
	}
	if v := imag(b[1]); math.Abs(v-0.125) > 1e-15 {
		t.Fatalf("V = %g", v)
	}
	// Brightness matrices are Hermitian.
	if b.MaxAbsDiff(b.Hermitian()) != 0 {
		t.Fatal("brightness not Hermitian")
	}
}

func TestNCoordinate(t *testing.T) {
	if N(0, 0) != 0 {
		t.Fatal("n(0,0) != 0")
	}
	// n = 1 - sqrt(1 - l^2 - m^2)
	l, m := 0.3, -0.4
	want := 1 - math.Sqrt(1-l*l-m*m)
	if d := math.Abs(N(l, m) - want); d > 1e-15 {
		t.Fatalf("n differs by %g", d)
	}
	// Small-angle accuracy: n ~ (l^2+m^2)/2.
	if d := math.Abs(N(1e-8, 0) - 0.5e-16); d > 1e-24 {
		t.Fatalf("small-angle n inaccurate: %g", d)
	}
}

func TestNOutsideSpherePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	N(1, 1)
}

func TestPredictZeroBaseline(t *testing.T) {
	// At u=v=w=0 the visibility is the total brightness.
	m := Model{{L: 0.01, M: 0.02, I: 1}, {L: -0.03, M: 0, I: 2.5}}
	v := m.Predict(0, 0, 0)
	if d := cmplx.Abs(v[0] - 3.5); d > 1e-12 {
		t.Fatalf("XX at origin = %v", v[0])
	}
}

func TestPredictPhaseOfOffsetSource(t *testing.T) {
	m := Model{{L: 0.01, M: -0.005, I: 1}}
	u, v, w := 100.0, -50.0, 10.0
	vis := m.Predict(u, v, w)
	phase := -2 * math.Pi * (u*0.01 + v*(-0.005) + w*N(0.01, -0.005))
	want := cmplx.Exp(complex(0, phase))
	if d := cmplx.Abs(vis[0] - want); d > 1e-12 {
		t.Fatalf("vis = %v, want %v", vis[0], want)
	}
}

func TestPredictIsLinearInFlux(t *testing.T) {
	m1 := Model{{L: 0.01, M: 0.01, I: 1}}
	m2 := Model{{L: 0.01, M: 0.01, I: 3}}
	a := m1.Predict(123, -45, 6)
	b := m2.Predict(123, -45, 6)
	if d := b.MaxAbsDiff(a.Scale(3)); d > 1e-12 {
		t.Fatalf("flux scaling violated: %g", d)
	}
}

func TestPredictConjugateSymmetry(t *testing.T) {
	// For an unpolarized real sky, V(-u,-v,-w) = conj(V(u,v,w)).
	m := RandomField(10, 0.05, 3)
	a := m.Predict(250, 80, -30)
	b := m.Predict(-250, -80, 30)
	if d := b.MaxAbsDiff(a.Conj()); d > 1e-10 {
		t.Fatalf("conjugate symmetry violated: %g", d)
	}
}

func TestPredictWithIdentityATermsMatchesPlain(t *testing.T) {
	m := RandomField(5, 0.05, 4)
	id := func(l, mm float64) (xmath.Matrix2, xmath.Matrix2) {
		return xmath.Identity2(), xmath.Identity2()
	}
	a := m.Predict(10, 20, 0.5)
	b := m.PredictWithATerms(10, 20, 0.5, id)
	if d := a.MaxAbsDiff(b); d > 1e-12 {
		t.Fatalf("identity A-terms changed prediction by %g", d)
	}
}

func TestPredictWithScalarATerm(t *testing.T) {
	// A scalar gain g applied at both stations scales V by |g|^2 for
	// real g (g * V * g^H).
	m := Model{{L: 0.02, M: 0.01, I: 1}}
	g := xmath.Identity2().Scale(2)
	at := func(l, mm float64) (xmath.Matrix2, xmath.Matrix2) { return g, g }
	a := m.Predict(5, 5, 0)
	b := m.PredictWithATerms(5, 5, 0, at)
	if d := b.MaxAbsDiff(a.Scale(4)); d > 1e-12 {
		t.Fatalf("scalar gain mismatch: %g", d)
	}
}

func TestRandomFieldDeterministicAndBounded(t *testing.T) {
	a := RandomField(100, 0.08, 7)
	b := RandomField(100, 0.08, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomField not deterministic")
		}
		if r := math.Hypot(a[i].L, a[i].M); r > 0.08 {
			t.Fatalf("source %d outside field: r=%g", i, r)
		}
		if a[i].I <= 0 {
			t.Fatalf("source %d has non-positive flux", i)
		}
	}
}

func TestRasterizeAndPixelMapping(t *testing.T) {
	n := 64
	imageSize := 0.1
	m := Model{{L: 0.02, M: -0.01, I: 2}}
	img := m.Rasterize(n, imageSize)
	x, y := LMToPixel(0.02, -0.01, n, imageSize)
	if got := real(img.At(0, y, x)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("rasterized flux = %g at (%d,%d)", got, x, y)
	}
	// Pixel -> lm -> pixel roundtrip.
	l, mm := PixelToLM(x, y, n, imageSize)
	x2, y2 := LMToPixel(l, mm, n, imageSize)
	if x2 != x || y2 != y {
		t.Fatalf("pixel mapping roundtrip (%d,%d) -> (%d,%d)", x, y, x2, y2)
	}
}

func TestRasterizeDropsOutOfField(t *testing.T) {
	m := Model{{L: 0.2, M: 0, I: 1}} // outside a 0.1 field
	img := m.Rasterize(32, 0.1)
	if img.Norm2() != 0 {
		t.Fatal("out-of-field source rasterized")
	}
}

func TestStokesIExtraction(t *testing.T) {
	m := Model{{L: 0, M: 0, I: 4, Q: 1}}
	img := m.Rasterize(16, 0.1)
	si := StokesI(img)
	center := 8*16 + 8
	if math.Abs(si[center]-4) > 1e-12 {
		t.Fatalf("Stokes I = %g, want 4", si[center])
	}
}

func TestTotalFlux(t *testing.T) {
	m := Model{{I: 1}, {I: 2.5}}
	if m.TotalFlux() != 3.5 {
		t.Fatalf("total flux = %g", m.TotalFlux())
	}
}
