package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aterm"
	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/plan"
)

// NewShardedGrid wraps g in a sharded accessor with the configured
// shard count (Params.GridShards, defaulting to one shard per worker).
func (k *Kernels) NewShardedGrid(g *grid.Grid) *grid.Sharded {
	return grid.NewSharded(g, k.params.gridShards())
}

// streamAccounting tracks the scheduler's in-flight state: how many
// chunks are currently between gridder and adder, and the high-water
// mark of simultaneously alive subgrids (the number the memory bound
// MaxInflightChunks x StreamChunkItems promises to cap).
type streamAccounting struct {
	inflight     atomic.Int64
	liveSubgrids atomic.Int64
	peakSubgrids atomic.Int64
}

func (a *streamAccounting) acquire(subgrids int) {
	a.inflight.Add(1)
	live := a.liveSubgrids.Add(int64(subgrids))
	for {
		peak := a.peakSubgrids.Load()
		if live <= peak || a.peakSubgrids.CompareAndSwap(peak, live) {
			return
		}
	}
}

func (a *streamAccounting) release(subgrids int) (inflight int64) {
	a.liveSubgrids.Add(int64(-subgrids))
	return a.inflight.Add(-1)
}

// GridVisibilitiesStreamed runs the gridding pass as a stream of
// chunks: the plan is cut into chunks of at most Params.StreamChunkItems
// work items (plan order preserved), and up to Params.MaxInflightChunks
// chunks are in flight at once, each flowing grid -> FFT -> add as a
// unit before its subgrids return to the pool. The chunk is the unit
// of parallelism — inside a chunk items run serially on the owning
// worker — so peak subgrid memory is bounded by
// min(workers, MaxInflightChunks) x StreamChunkItems subgrids
// regardless of observation length, which is what lets a streamed pass
// grid observations larger than memory.
//
// Accumulation goes through the sharded adder onto sh: overlapping
// chunks contend only on shared row bands. With Workers <= 1 or one
// shard the chunks (and their items) run in exact plan order and the
// result is bit-for-bit identical to the serial batch pipeline;
// otherwise it differs only by floating-point reassociation.
//
// GridVisibilitiesFT routes here automatically when
// Params.GridShards or Params.MaxInflightChunks opt in.
func (k *Kernels) GridVisibilitiesStreamed(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, sh *grid.Sharded, ft faulttol.Config) (StageTimes, *faulttol.Report, error) {
	var times StageTimes
	rep := faulttol.NewReport(ft)
	if err := k.checkPlan(p, vs); err != nil {
		return times, rep, err
	}
	if sh.Master().N != k.params.GridSize {
		return times, rep, fmt.Errorf("core: sharded grid size %d != kernel grid size %d",
			sh.Master().N, k.params.GridSize)
	}
	chunks := p.StreamChunks(k.params.chunkItems())
	if len(chunks) == 0 {
		return times, rep, ctxErr(ctx)
	}
	// The A-term cache is not write-safe concurrently: warm it for the
	// whole plan up front, so every worker Get is a read-only hit.
	cache := k.newATermCache(prov)
	k.prefillATerms(cache, p.Items, vs.Baselines)

	workers := k.params.workers()
	if m := k.params.maxInflight(); workers > m {
		workers = m
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers < 1 {
		workers = 1
	}

	attempts := ft.Attempts()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var acct streamAccounting
	var gridNs, fftNs, addNs atomic.Int64

	// runChunk pumps one chunk through grid -> FFT -> add on the
	// calling worker. Items run serially (par 1): chunk-level
	// parallelism saturates the pool, so intra-item tile fan-out would
	// only add scheduling overhead.
	runChunk := func(worker int, c plan.Chunk, s *scratch, subgrids []*grid.Subgrid) {
		acct.acquire(len(c.Items))
		defer func() {
			k.releaseSubgrids(subgrids)
			k.ob.chunkDone(acct.release(len(c.Items)))
		}()
		wp := planeOf(c.Items)

		gt0 := k.ob.now()
		t0 := time.Now()
		for i := range c.Items {
			if runCtx.Err() != nil {
				return
			}
			item := c.Items[i]
			it0 := k.ob.now()
			var err error
			made := 0
			for a := 1; a <= attempts; a++ {
				made = a
				err = faulttol.Run(func() error {
					if ft.Hook != nil {
						ft.Hook(item, a)
					}
					sgr := subgrids[i]
					if sgr == nil {
						sgr = k.getSubgrid(item.X0, item.Y0)
						subgrids[i] = sgr
					}
					sgr.X0, sgr.Y0 = item.X0, item.Y0
					sgr.WOffset, sgr.WPlane = item.WOffset, item.WPlane
					vis := s.visBuf(item.NrVisibilities())
					vs.gather(item, vis)
					if k.ob.enabled() {
						k.ob.flaggedVis(vs.countFlagged(item))
					}
					ap, aq := k.lookupATerms(cache, vs.Baselines, item)
					k.gridSubgridScratch(item, vs.itemUVW(item), vis, ap, aq, sgr, s, 1)
					if !sgr.Finite() {
						return fmt.Errorf("%w: non-finite subgrid (corrupt unflagged visibilities)",
							faulttol.ErrBadInput)
					}
					return nil
				})
				if err == nil {
					rep.RecordSuccess(a > 1)
					k.ob.itemDone(obs.StageGrid, c.Index, worker, i, item, a, it0)
					break
				}
				k.ob.attemptFailed(err)
				if errors.Is(err, faulttol.ErrBadInput) || runCtx.Err() != nil {
					break
				}
			}
			if err != nil {
				// Failed items leave a poisoned subgrid behind; drop it
				// so the FFT/add stages pass over the slot.
				if subgrids[i] != nil {
					k.putSubgrid(subgrids[i])
					subgrids[i] = nil
				}
				ie := &faulttol.ItemError{
					Baseline:  item.Baseline,
					TimeStart: item.TimeStart,
					Channel0:  item.Channel0,
					Attempts:  made,
					Err:       err,
				}
				if ft.Policy == faulttol.SkipAndFlag {
					rep.RecordSkip(ie, int64(item.NrVisibilities()))
					k.ob.itemSkipped(item)
					continue
				}
				fail(ie)
				return
			}
		}
		d := time.Since(t0)
		gridNs.Add(d.Nanoseconds())
		k.ob.stageDone(obs.StageGrid, c.Index, wp, gt0, d)

		if runCtx.Err() != nil {
			return
		}
		ft0 := k.ob.now()
		t0 = time.Now()
		for _, sgr := range subgrids {
			if sgr != nil {
				k.fftSubgridOne(sgr, false)
			}
		}
		d = time.Since(t0)
		fftNs.Add(d.Nanoseconds())
		k.ob.stageDone(obs.StageFFT, c.Index, wp, ft0, d)
		if k.ob.enabled() {
			k.ob.subgrids(k.ob.sgFFT, countLive(subgrids))
		}

		if runCtx.Err() != nil {
			return
		}
		at0 := k.ob.now()
		t0 = time.Now()
		k.AdderSharded(subgrids, sh)
		d = time.Since(t0)
		addNs.Add(d.Nanoseconds())
		k.ob.stageDone(obs.StageAdd, c.Index, wp, at0, d)
	}

	if workers == 1 {
		// Serial dispatch in chunk order: with one shard this is the
		// bit-for-bit reference ordering.
		s := k.getScratch()
		subgrids := make([]*grid.Subgrid, k.params.chunkItems())
		for _, c := range chunks {
			if runCtx.Err() != nil {
				break
			}
			runChunk(0, c, s, subgrids[:len(c.Items)])
		}
		k.putScratch(s)
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				s := k.getScratch()
				defer k.putScratch(s)
				subgrids := make([]*grid.Subgrid, k.params.chunkItems())
				for runCtx.Err() == nil {
					ci := int(next.Add(1)) - 1
					if ci >= len(chunks) {
						return
					}
					c := chunks[ci]
					runChunk(worker, c, s, subgrids[:len(c.Items)])
				}
			}(w)
		}
		wg.Wait()
	}

	k.ob.streamPeak(acct.peakSubgrids.Load())
	times.Gridder = time.Duration(gridNs.Load())
	times.SubgridFFT = time.Duration(fftNs.Load())
	times.Adder = time.Duration(addNs.Load())
	if firstErr != nil {
		return times, rep, firstErr
	}
	return times, rep, ctxErr(ctx)
}

// PeakInflightSubgrids returns the high-water mark the latest streamed
// pass published to the observer's GaugeStreamPeakSubgrids, or 0
// without an observer. Tests use it to check the streaming memory
// bound.
func PeakInflightSubgrids(o *obs.Observer) int64 {
	if o == nil || o.Metrics == nil {
		return 0
	}
	return int64(o.Metrics.Gauge(obs.GaugeStreamPeakSubgrids).Value())
}
