package weight

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/uvwsim"
)

func testObservation(t *testing.T) ([][]uvwsim.UVW, []float64, []uvwsim.Baseline, float64, int) {
	t.Helper()
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = 12
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	const nt = 64
	tracks := sim.AllTracks(nt)
	freqs := []float64{150e6, 150.5e6}
	maxUV := sim.MaxUV(nt) * freqs[1] / uvwsim.SpeedOfLight
	gridSize := 256
	imageSize := float64(gridSize/2-16) / maxUV
	return tracks, freqs, sim.Baselines(), imageSize, gridSize
}

func computeScheme(t *testing.T, scheme Scheme, robust float64) (*Weights, [][]uvwsim.UVW, []float64) {
	t.Helper()
	tracks, freqs, _, imageSize, gridSize := testObservation(t)
	w, err := Compute(Config{
		Scheme: scheme, Robust: robust, GridSize: gridSize, ImageSize: imageSize,
	}, tracks, freqs)
	if err != nil {
		t.Fatal(err)
	}
	return w, tracks, freqs
}

func TestNaturalWeightsAreUnit(t *testing.T) {
	w, tracks, freqs := computeScheme(t, Natural, 0)
	for _, track := range tracks[:5] {
		for _, c := range track[:8] {
			if got := w.For(c, freqs[0]); got != 1 {
				t.Fatalf("natural weight = %g", got)
			}
		}
	}
}

func TestUniformDownweightsDenseCells(t *testing.T) {
	w, tracks, freqs := computeScheme(t, Uniform, 0)
	// Core baselines revisit the same uv cells over and over; their
	// weights must be below 1. All weights are in (0, 1].
	sawDense := false
	for _, track := range tracks {
		for _, c := range track {
			wt := w.For(c, freqs[0])
			if wt <= 0 || wt > 1 {
				t.Fatalf("uniform weight %g out of (0, 1]", wt)
			}
			if wt < 0.2 {
				sawDense = true
			}
		}
	}
	if !sawDense {
		t.Fatal("expected strongly downweighted dense cells in the core")
	}
}

func TestRobustInterpolates(t *testing.T) {
	wNat, tracks, freqs := computeScheme(t, Natural, 0)
	wUni, _, _ := computeScheme(t, Uniform, 0)
	wLo, _, _ := computeScheme(t, Robust, -2) // ~uniform
	wHi, _, _ := computeScheme(t, Robust, 2)  // ~natural

	// Compare normalized weight *shapes* on a dense cell vs a sparse
	// cell: robust(-2) should follow uniform's relative downweighting,
	// robust(+2) natural's flatness.
	var dense, sparse uvwsim.UVW
	denseFound, sparseFound := false, false
	for _, track := range tracks {
		for _, c := range track {
			if wUni.For(c, freqs[0]) < 0.05 && !denseFound {
				dense, denseFound = c, true
			}
			if wUni.For(c, freqs[0]) > 0.9 && !sparseFound {
				sparse, sparseFound = c, true
			}
		}
	}
	if !denseFound || !sparseFound {
		t.Skip("layout did not produce both dense and sparse cells")
	}
	ratio := func(w *Weights) float64 {
		return w.For(dense, freqs[0]) / w.For(sparse, freqs[0])
	}
	rNat, rUni, rLo, rHi := ratio(wNat), ratio(wUni), ratio(wLo), ratio(wHi)
	if rNat != 1 {
		t.Fatalf("natural ratio = %g", rNat)
	}
	// Robust(-2) close to uniform, robust(+2) much flatter.
	if rLo > 10*rUni {
		t.Fatalf("robust(-2) ratio %g too far from uniform %g", rLo, rUni)
	}
	if rHi < 10*rLo {
		t.Fatalf("robust(+2) ratio %g should be much flatter than robust(-2) %g", rHi, rLo)
	}
}

func TestApplyScalesVisibilitiesAndReturnsTotal(t *testing.T) {
	w, tracks, freqs := computeScheme(t, Uniform, 0)
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = 12
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	vs := core.MustNewVisibilitySet(sim.Baselines(), tracks, len(freqs))
	for b := range vs.Data {
		for i := range vs.Data[b] {
			vs.Data[b][i][0] = 1
		}
	}
	total := Apply(vs, w, freqs)
	if total <= 0 {
		t.Fatal("total weight must be positive")
	}
	// Each visibility equals its weight now; their sum equals total.
	var sum float64
	for b := range vs.Data {
		for i := range vs.Data[b] {
			sum += real(vs.Data[b][i][0])
		}
	}
	if math.Abs(sum-total) > 1e-6*total {
		t.Fatalf("applied weights sum %g != reported total %g", sum, total)
	}
}

func TestMeanWeightConsistent(t *testing.T) {
	w, tracks, freqs := computeScheme(t, Uniform, 0)
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = 12
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	vs := core.MustNewVisibilitySet(sim.Baselines(), tracks, len(freqs))
	mean := MeanWeight(vs, w, freqs)
	if mean <= 0 || mean > 1 {
		t.Fatalf("mean uniform weight %g out of range", mean)
	}
}

func TestComputeValidation(t *testing.T) {
	tracks, freqs, _, imageSize, gridSize := testObservation(t)
	bad := []Config{
		{Scheme: Uniform, GridSize: 1, ImageSize: imageSize},
		{Scheme: Uniform, GridSize: gridSize, ImageSize: 0},
		{Scheme: Robust, Robust: 3, GridSize: gridSize, ImageSize: imageSize},
	}
	for i, cfg := range bad {
		if _, err := Compute(cfg, tracks, freqs); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
	if _, err := Compute(Config{Scheme: Uniform, GridSize: gridSize, ImageSize: imageSize}, nil, freqs); err == nil {
		t.Fatal("empty tracks should fail")
	}
}

func TestSchemeString(t *testing.T) {
	if Natural.String() != "natural" || Uniform.String() != "uniform" || Robust.String() != "robust" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(99).String() == "" {
		t.Fatal("unknown scheme must still format")
	}
}

// TestUniformWeightingSharpensPSF drives the full IDG pipeline: the
// uniformly-weighted PSF must have lower far sidelobes than the
// naturally-weighted one (the classic weighting trade-off).
func TestUniformWeightingSharpensPSF(t *testing.T) {
	tracks, freqs, baselines, imageSize, gridSize := testObservation(t)

	kernels, err := core.NewKernels(core.Params{
		GridSize: gridSize, SubgridSize: 24, ImageSize: imageSize, Frequencies: freqs,
	})
	if err != nil {
		t.Fatal(err)
	}
	pcfg := struct{}{}
	_ = pcfg

	psf := func(scheme Scheme) []float64 {
		vs := core.MustNewVisibilitySet(baselines, tracks, len(freqs))
		for b := range vs.Data {
			for i := range vs.Data[b] {
				vs.Data[b][i] = [4]complex128{1, 0, 0, 1}
			}
		}
		w, err := Compute(Config{Scheme: scheme, GridSize: gridSize, ImageSize: imageSize}, tracks, freqs)
		if err != nil {
			t.Fatal(err)
		}
		total := Apply(vs, w, freqs)

		p, err := planFor(gridSize, imageSize, freqs, tracks)
		if err != nil {
			t.Fatal(err)
		}
		g := coreNewGrid(gridSize)
		if _, err := kernels.GridVisibilities(context.Background(), p, vs, nil, g); err != nil {
			t.Fatal(err)
		}
		img := core.GridToImage(g, 0)
		core.ScaleImage(img, float64(gridSize*gridSize)/total)
		core.ApplyTaperCorrection(img, kernels.TaperCorrection(gridSize))
		return stokesI(img)
	}

	nat := psf(Natural)
	uni := psf(Uniform)
	center := (gridSize/2)*gridSize + gridSize/2
	if math.Abs(nat[center]-1) > 0.05 || math.Abs(uni[center]-1) > 0.05 {
		t.Fatalf("PSF peaks wrong: natural %.3f, uniform %.3f", nat[center], uni[center])
	}
	// RMS of the PSF outside the main lobe.
	rms := func(img []float64) float64 {
		var s float64
		var n int
		for y := 0; y < gridSize; y++ {
			for x := 0; x < gridSize; x++ {
				dx, dy := x-gridSize/2, y-gridSize/2
				r2 := dx*dx + dy*dy
				if r2 > 100 && r2 < (gridSize/3)*(gridSize/3) {
					s += img[y*gridSize+x] * img[y*gridSize+x]
					n++
				}
			}
		}
		return math.Sqrt(s / float64(n))
	}
	rNat, rUni := rms(nat), rms(uni)
	t.Logf("PSF sidelobe rms: natural %.4f, uniform %.4f", rNat, rUni)
	if rUni >= rNat {
		t.Fatalf("uniform weighting should lower PSF sidelobes: %.4f vs %.4f", rUni, rNat)
	}
}
