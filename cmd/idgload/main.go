// Command idgload is the load-generator client for idgserver: it
// builds one synthetic observation, fills it from a deterministic sky
// model, then replays it as many concurrent sessions across several
// tenants — create session, stream the visibility frames, finalize,
// optionally fetch and hash the grid — and prints a latency-percentile
// report per stage plus aggregate throughput.
//
// With -verify the expected grid SHA-256 is computed locally through
// the same streamed scheduler the server uses (on the float32-
// quantized data the wire carries), and every session's result is
// checked against it: a golden conformance check against a live
// server.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/server"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "idgload:", err)
	os.Exit(1)
}

// lat collects one latency population.
type lat struct {
	mu sync.Mutex
	v  []time.Duration
}

func (l *lat) add(d time.Duration) {
	l.mu.Lock()
	l.v = append(l.v, d)
	l.mu.Unlock()
}

// pct returns the p-th percentile (nearest-rank) of the population.
func (l *lat) pct(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.v) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), l.v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(p/100*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}

func main() {
	var (
		base        = flag.String("addr", "http://127.0.0.1:8321", "server base URL")
		tenants     = flag.Int("tenants", 2, "number of tenants")
		sessions    = flag.Int("sessions", 4, "sessions per tenant")
		concurrency = flag.Int("concurrency", 4, "sessions in flight at once")
		stations    = flag.Int("stations", 10, "observation stations")
		steps       = flag.Int("steps", 48, "time steps")
		channels    = flag.Int("channels", 4, "channels")
		gridSize    = flag.Int("grid", 256, "grid size in pixels")
		subgrid     = flag.Int("subgrid", 16, "subgrid size in pixels")
		inflight    = flag.Int("max-inflight", 2, "per-session MaxInflightChunks request (0: server default)")
		frameVis    = flag.Int("frame-vis", 256, "visibilities per wire frame")
		fetch       = flag.Bool("fetch", true, "fetch and hash the grid after finalize")
		verify      = flag.Bool("verify", false, "golden-check every session against a local streamed pass")
	)
	flag.Parse()
	switch {
	case *tenants < 1 || *sessions < 1 || *concurrency < 1:
		fail(fmt.Errorf("-tenants, -sessions and -concurrency must be >= 1"))
	case *frameVis < 1:
		fail(fmt.Errorf("-frame-vis must be >= 1, got %d", *frameVis))
	case *inflight < 0:
		fail(fmt.Errorf("-max-inflight must be >= 0, got %d", *inflight))
	}

	scfg := server.SessionConfig{
		NrStations:     *stations,
		NrTimesteps:    *steps,
		NrChannels:     *channels,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       *gridSize,
		SubgridSize:    *subgrid,
		KernelSupport:  4,
		GridMargin:     *gridSize / 16,
		ATermInterval:  16,
		// Workers 1 + one shard keeps every session bit-reproducible,
		// which is what makes -verify a golden check.
		Workers:           1,
		GridShards:        1,
		MaxInflightChunks: *inflight,
	}

	// Build the observation once, fill it from a fixed sky model, and
	// quantize to the float32 the wire carries; every session replays
	// these exact bytes.
	ocfg := repro.ObservationConfig{
		NrStations: scfg.NrStations, NrTimesteps: scfg.NrTimesteps, NrChannels: scfg.NrChannels,
		StartFrequency: scfg.StartFrequency, ChannelWidth: scfg.ChannelWidth,
		GridSize: scfg.GridSize, SubgridSize: scfg.SubgridSize, KernelSupport: scfg.KernelSupport,
		GridMargin: scfg.GridMargin, ATermInterval: scfg.ATermInterval,
		Workers: 1, GridShards: 1, MaxInflightChunks: scfg.MaxInflightChunks,
	}
	o, err := ocfg.Build()
	if err != nil {
		fail(err)
	}
	pix := o.ImageSize / float64(ocfg.GridSize)
	model := repro.SkyModel{
		{L: 20 * pix, M: -12 * pix, I: 1},
		{L: -36 * pix, M: 26 * pix, I: 0.5},
	}
	if err := o.FillFromModel(model); err != nil {
		fail(err)
	}
	// Wire samples, baseline-major, 8 float32 per visibility.
	wire := make([][]float32, len(o.Vis.Data))
	for b, data := range o.Vis.Data {
		buf := make([]float32, len(data)*8)
		for i, m := range data {
			for p := 0; p < 4; p++ {
				buf[8*i+2*p] = float32(real(m[p]))
				buf[8*i+2*p+1] = float32(imag(m[p]))
			}
		}
		wire[b] = buf
	}

	wantSHA := ""
	if *verify {
		// The local reference grids the float32-quantized data the
		// server will see.
		for b, buf := range wire {
			for i := range o.Vis.Data[b] {
				var m repro.Matrix2
				for p := 0; p < 4; p++ {
					m[p] = complex(float64(buf[8*i+2*p]), float64(buf[8*i+2*p+1]))
				}
				o.Vis.Data[b][i] = m
			}
		}
		g, _, _, err := o.GridAllStreamed(context.Background(), nil, repro.FaultConfig{})
		if err != nil {
			fail(err)
		}
		wantSHA = repro.FingerprintGrid(g).SHA256
		fmt.Printf("idgload: local golden sha256 %s\n", wantSHA)
	}

	type job struct{ tenant, session int }
	jobs := make(chan job)
	var createLat, streamLat, finalizeLat, totalLat lat
	var failures, verified atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				c := &server.Client{Base: *base, Tenant: fmt.Sprintf("tenant-%d", j.tenant)}
				if err := runSession(c, scfg, wire, *frameVis, *fetch, wantSHA,
					&createLat, &streamLat, &finalizeLat, &totalLat, &verified); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "idgload: tenant %d session %d: %v\n", j.tenant, j.session, err)
				}
			}
		}()
	}
	for t := 0; t < *tenants; t++ {
		for s := 0; s < *sessions; s++ {
			jobs <- job{t, s}
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(t0)

	total := *tenants * *sessions
	visPerSession := int64(len(wire)) * int64(*steps) * int64(*channels)
	fmt.Printf("\nidgload: %d sessions (%d tenants x %d), concurrency %d, %d failed, %v elapsed\n",
		total, *tenants, *sessions, *concurrency, failures.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("idgload: %.2f sessions/s, %.2f MVis/s aggregate\n",
		float64(total)/elapsed.Seconds(),
		float64(int64(total)*visPerSession)/elapsed.Seconds()/1e6)
	fmt.Printf("%-10s %12s %12s %12s\n", "stage", "p50", "p95", "p99")
	for _, row := range []struct {
		name string
		l    *lat
	}{{"create", &createLat}, {"stream", &streamLat}, {"finalize", &finalizeLat}, {"total", &totalLat}} {
		fmt.Printf("%-10s %12v %12v %12v\n", row.name,
			row.l.pct(50).Round(time.Microsecond),
			row.l.pct(95).Round(time.Microsecond),
			row.l.pct(99).Round(time.Microsecond))
	}
	if *verify {
		fmt.Printf("idgload: %d/%d sessions verified against the local golden hash\n", verified.Load(), total)
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// runSession drives one full session lifecycle and records latencies.
func runSession(c *server.Client, scfg server.SessionConfig, wire [][]float32, frameVis int,
	fetch bool, wantSHA string, createLat, streamLat, finalizeLat, totalLat *lat, verified *atomic.Int64) error {
	t0 := time.Now()
	info, err := c.CreateSession(scfg)
	if err != nil {
		return err
	}
	createLat.add(time.Since(t0))
	defer c.Delete(info.SessionID)

	ts := time.Now()
	err = c.StreamVis(info.SessionID, func(w *server.FrameWriter) error {
		for b, buf := range wire {
			for off := 0; off < len(buf)/8; off += frameVis {
				end := off + frameVis
				if end > len(buf)/8 {
					end = len(buf) / 8
				}
				if err := w.WriteVis(b, off, buf[off*8:end*8]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	streamLat.add(time.Since(ts))

	tf := time.Now()
	res, err := c.Finalize(info.SessionID)
	if err != nil {
		return err
	}
	finalizeLat.add(time.Since(tf))

	if fetch {
		sha, _, err := c.FetchGridSHA256(info.SessionID)
		if err != nil {
			return err
		}
		if sha != res.SHA256 {
			return fmt.Errorf("grid transfer hash %s != result hash %s", sha, res.SHA256)
		}
	}
	if wantSHA != "" {
		if res.SHA256 != wantSHA {
			return fmt.Errorf("session sha256 %s != local golden %s", res.SHA256, wantSHA)
		}
		verified.Add(1)
	}
	totalLat.add(time.Since(t0))
	return nil
}
