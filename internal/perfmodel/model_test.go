package perfmodel

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/layout"
	"repro/internal/plan"
	"repro/internal/uvwsim"
)

func TestPaperDatasetCounts(t *testing.T) {
	d := PaperDataset()
	if d.NrBaselines != 11175 {
		t.Fatalf("baselines = %d, want 11175", d.NrBaselines)
	}
	if want := 11175.0 * 8192 * 16; d.NrVisibilities != want {
		t.Fatalf("visibilities = %g, want %g", d.NrVisibilities, want)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridderCountsScale(t *testing.T) {
	d := PaperDataset()
	c := GridderCounts(d)
	// The dominant term: 36 ops per visibility-pixel pair.
	pairs := d.NrVisibilities * float64(d.SubgridSize*d.SubgridSize)
	if c.Ops < 36*pairs || c.Ops > 40*pairs {
		t.Fatalf("gridder ops %.3g outside [36, 40] per pair", c.Ops/pairs)
	}
	// Rho is close to (but slightly above) 17: the phase-index and
	// correction FMAs add a little.
	if c.Rho < 17 || c.Rho > 18 {
		t.Fatalf("gridder rho = %.2f, want ~17", c.Rho)
	}
	// Heavily compute bound: hundreds of ops per device byte
	// (Section VI-B: "on all architectures, both kernels are compute
	// bound").
	if oi := c.OperationalIntensity(); oi < 100 {
		t.Fatalf("gridder OI = %.1f ops/byte, expected compute-bound (>100)", oi)
	}
	// Shared-memory intensity is around 1.5 ops/byte.
	if si := c.SharedIntensity(); si < 1 || si > 2 {
		t.Fatalf("gridder shared intensity = %.2f", si)
	}
}

// TestPascalFractionsMatchPaper pins the headline result of
// Section VI-C2: on PASCAL the gridder achieves 74% and the degridder
// 55% of the theoretical peak, both limited by shared memory.
func TestPascalFractionsMatchPaper(t *testing.T) {
	d := PaperDataset()
	p := arch.Pascal()
	g := Predict(p, GridderCounts(d))
	dg := Predict(p, DegridderCounts(d))
	if math.Abs(g.FractionOfPeak-0.74) > 0.03 {
		t.Fatalf("Pascal gridder at %.1f%% of peak, paper reports 74%%", 100*g.FractionOfPeak)
	}
	if math.Abs(dg.FractionOfPeak-0.55) > 0.03 {
		t.Fatalf("Pascal degridder at %.1f%% of peak, paper reports 55%%", 100*dg.FractionOfPeak)
	}
	if g.Bound != BoundSharedMemory || dg.Bound != BoundSharedMemory {
		t.Fatalf("Pascal kernels should be shared-memory bound, got %s/%s", g.Bound, dg.Bound)
	}
}

// TestALUPlatformsSincosLimited: Haswell and Fiji are limited by the
// sincos evaluations ("we cannot use the full computational capacity
// of HASWELL and FIJI without algorithmic changes").
func TestALUPlatformsSincosLimited(t *testing.T) {
	d := PaperDataset()
	for _, tc := range []struct {
		p      *arch.Platform
		lo, hi float64
	}{
		{arch.Haswell(), 0.15, 0.30},
		{arch.Fiji(), 0.40, 0.60},
	} {
		g := Predict(tc.p, GridderCounts(d))
		if g.FractionOfPeak < tc.lo || g.FractionOfPeak > tc.hi {
			t.Fatalf("%s gridder at %.1f%% of peak, want within [%.0f%%, %.0f%%]",
				tc.p.Name, 100*g.FractionOfPeak, 100*tc.lo, 100*tc.hi)
		}
		if g.Bound != BoundCompute {
			t.Fatalf("%s gridder should be compute bound, got %s", tc.p.Name, g.Bound)
		}
		// But close to the sincos-adjusted ceiling (Fig. 11 dashed
		// lines): achieved ~= MixOpsPerSec(rho).
		ceiling := tc.p.MixOpsPerSec(GridderCounts(d).Rho)
		if ratio := g.OpsPerSec / ceiling; ratio < 0.95 {
			t.Fatalf("%s gridder at %.2f of its mix ceiling, want ~1", tc.p.Name, ratio)
		}
	}
}

// TestGPUsOrderOfMagnitudeFaster: "Both GPUs complete the task almost
// an order of magnitude faster than HASWELL" (Section VI-B).
func TestGPUsOrderOfMagnitudeFaster(t *testing.T) {
	d := PaperDataset()
	cpuCycle := ImagingCycle(arch.Haswell(), d)
	cpu := cpuCycle.Total()
	for _, p := range []*arch.Platform{arch.Fiji(), arch.Pascal()} {
		gpuCycle := ImagingCycle(p, d)
		gpu := gpuCycle.Total()
		if ratio := cpu / gpu; ratio < 7 {
			t.Fatalf("%s only %.1fx faster than HASWELL, want ~10x", p.Name, ratio)
		}
	}
}

// TestRuntimeDominatedByKernels: "runtime is dominated by the gridder
// and degridder kernels (more than 93%)" (Section VI-B).
func TestRuntimeDominatedByKernels(t *testing.T) {
	d := PaperDataset()
	for _, p := range arch.Platforms() {
		c := ImagingCycle(p, d)
		if f := c.FractionInGridderDegridder(); f < 0.93 {
			t.Fatalf("%s: gridder+degridder only %.1f%% of the cycle", p.Name, 100*f)
		}
	}
}

// TestThroughputOrdering checks the Fig. 10 ordering: PASCAL > FIJI >>
// HASWELL, with PASCAL in the hundreds of MVis/s.
func TestThroughputOrdering(t *testing.T) {
	d := PaperDataset()
	gh, _ := ThroughputMVisPerSec(arch.Haswell(), d)
	gf, _ := ThroughputMVisPerSec(arch.Fiji(), d)
	gp, dp := ThroughputMVisPerSec(arch.Pascal(), d)
	if !(gp > gf && gf > gh) {
		t.Fatalf("throughput ordering violated: %g, %g, %g", gh, gf, gp)
	}
	if gp < 250 || gp > 450 {
		t.Fatalf("Pascal gridding throughput %.0f MVis/s implausible", gp)
	}
	if dp >= gp {
		t.Fatal("degridding should be slower than gridding on Pascal (shared-memory bound)")
	}
}

// TestPCIeHiddenByTripleBuffering: on the GPUs the transfers take less
// time than the kernels, so triple buffering hides them completely.
func TestPCIeHiddenByTripleBuffering(t *testing.T) {
	d := PaperDataset()
	for _, p := range []*arch.Platform{arch.Fiji(), arch.Pascal()} {
		c := ImagingCycle(p, d)
		kernels := c.Total()
		if c.PCIeSeconds >= kernels {
			t.Fatalf("%s: PCIe %.1fs exceeds kernels %.1fs; transfers not hidden", p.Name, c.PCIeSeconds, kernels)
		}
	}
}

func TestRooflinePoints(t *testing.T) {
	d := PaperDataset()
	dev := DeviceRoofline(d)
	if len(dev) != 6 { // 3 platforms x 2 kernels
		t.Fatalf("device roofline has %d points", len(dev))
	}
	for _, pt := range dev {
		if pt.TOpsPerSec <= 0 || pt.TOpsPerSec > pt.PeakTOps+1e-9 {
			t.Fatalf("%s/%s: achieved %.2f TOps vs peak %.2f", pt.Platform, pt.Kernel, pt.TOpsPerSec, pt.PeakTOps)
		}
		if pt.CeilingTOps > pt.PeakTOps+1e-9 {
			t.Fatalf("%s/%s: ceiling above peak", pt.Platform, pt.Kernel)
		}
	}
	sh := SharedRoofline(d)
	if len(sh) != 4 { // 2 GPUs x 2 kernels
		t.Fatalf("shared roofline has %d points", len(sh))
	}
	// The GPU kernels sit close to (<= and within 35% of) their
	// shared-memory ceilings (Fig. 13: "both kernels are close to the
	// shared memory bandwidth bound"; Fiji is ALU-limited slightly
	// below it).
	for _, pt := range sh {
		if pt.TOpsPerSec > pt.CeilingTOps*1.0001 {
			t.Fatalf("%s/%s exceeds shared ceiling", pt.Platform, pt.Kernel)
		}
		if pt.TOpsPerSec < 0.6*pt.CeilingTOps {
			t.Fatalf("%s/%s far from shared ceiling: %.2f of %.2f TOps",
				pt.Platform, pt.Kernel, pt.TOpsPerSec, pt.CeilingTOps)
		}
	}
}

// TestFromPlanMatchesStats: dataset extraction from a real plan.
func TestFromPlanMatchesStats(t *testing.T) {
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = 10
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	tracks := sim.AllTracks(128)
	freqs := make([]float64, 8)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*200e3
	}
	maxUV := sim.MaxUV(128) * freqs[7] / uvwsim.SpeedOfLight
	pcfg := plan.Config{
		GridSize: 512, SubgridSize: 24,
		ImageSize: float64(512/2-40) / maxUV, Frequencies: freqs,
		KernelSupport: 4, MaxTimestepsPerSubgrid: 128, ATermUpdateInterval: 64,
	}
	p, err := plan.New(pcfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	d := FromPlan("test", p, len(tracks), 128)
	st := p.Stats()
	if d.NrVisibilities != float64(st.NrGriddedVisibilities) ||
		d.NrSubgrids != float64(st.NrSubgrids) {
		t.Fatal("FromPlan counts mismatch")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The model runs on plan-derived datasets too.
	c := ImagingCycle(arch.Pascal(), d)
	if c.Total() <= 0 {
		t.Fatal("degenerate modelled cycle")
	}
}

func TestPredictSplitterBandwidthBound(t *testing.T) {
	d := PaperDataset()
	s := Predict(arch.Pascal(), SplitterCounts(d))
	if s.Bound != BoundDeviceMemory {
		t.Fatalf("splitter bound = %s, want device-memory", s.Bound)
	}
	if s.Seconds <= 0 {
		t.Fatal("splitter time must be positive")
	}
}

func TestDatasetValidate(t *testing.T) {
	bad := Dataset{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty dataset should fail validation")
	}
}
