package repro

import (
	"io"

	"repro/internal/obs"
)

// Observability re-exports: the metrics registry and stage tracer of
// internal/obs, attachable to a pipeline via Params.Observer or
// ObservationConfig.Observer. See DESIGN.md ("Observability") for the
// architecture and overhead budget.
type (
	// Observer bundles a metrics registry and a stage tracer; nil
	// disables observation at zero cost.
	Observer = obs.Observer
	// MetricsRegistry is the concurrency-safe counter/gauge/histogram
	// store.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry,
	// JSON-exportable and renderable as a table.
	MetricsSnapshot = obs.Snapshot
	// Tracer records pipeline stage/item/tile spans.
	Tracer = obs.Tracer
	// TraceSpan is one completed span.
	TraceSpan = obs.Span
	// Trace is the exported (JSON round-trippable) form of a tracer.
	Trace = obs.Trace
	// TraceStage identifies a pipeline stage in spans and metric names.
	TraceStage = obs.Stage
)

// Pipeline stages appearing in trace spans.
const (
	StageGrid   = obs.StageGrid
	StageFFT    = obs.StageFFT
	StageAdd    = obs.StageAdd
	StageSplit  = obs.StageSplit
	StageDegrid = obs.StageDegrid
	StageTile   = obs.StageTile
	StageShard  = obs.StageShard
	StageWPlane = obs.StageWPlane
	StageCycle  = obs.StageCycle
)

// NewObserver returns an observer with a fresh registry and a tracer
// bounded to maxSpans spans (<= 0 selects obs.DefaultMaxSpans).
func NewObserver(maxSpans int) *Observer { return obs.New(maxSpans) }

// ReadTrace decodes a trace written by Tracer.WriteJSON.
func ReadTrace(r io.Reader) (Trace, error) { return obs.ReadJSON(r) }

// ReadMetricsSnapshot decodes a snapshot written by
// MetricsSnapshot.WriteJSON.
func ReadMetricsSnapshot(r io.Reader) (MetricsSnapshot, error) { return obs.ReadSnapshot(r) }
