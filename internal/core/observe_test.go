package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/plan"
)

// observedScenario rebuilds a scenario's kernels with an attached
// observer (buildScenario constructs unobserved kernels).
func observedScenario(tb testing.TB, sc scenarioConfig) (*scenario, *obs.Observer) {
	tb.Helper()
	s := buildScenario(tb, sc)
	ob := obs.New(0)
	p := s.kernels.Params()
	p.Observer = ob
	k, err := NewKernels(p)
	if err != nil {
		tb.Fatal(err)
	}
	s.kernels = k
	return s, ob
}

// TestObserverStageCountsMatchPlan is the acceptance-criteria check:
// with observation enabled, the per-stage visibility counters must
// exactly match the plan's totals, for both pipelines.
func TestObserverStageCountsMatchPlan(t *testing.T) {
	s, ob := observedScenario(t, defaultScenarioConfig())
	s.fillFromModel(nil)
	ctx := context.Background()
	g := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(ctx, s.plan, s.vs, nil, g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.kernels.DegridVisibilities(ctx, s.plan, s.vs, nil, g); err != nil {
		t.Fatal(err)
	}

	st := s.plan.Stats()
	snap := ob.Metrics.Snapshot()
	nItems := int64(len(s.plan.Items))
	wantCounters := map[string]int64{
		obs.MetricGridVisibilities:   st.NrGriddedVisibilities,
		obs.MetricDegridVisibilities: st.NrGriddedVisibilities,
		obs.MetricGridSubgrids:       nItems,
		obs.MetricDegridSubgrids:     nItems,
		obs.MetricFFTSubgrids:        2 * nItems, // forward + inverse
		obs.MetricAddedSubgrids:      nItems,
		obs.MetricSplitSubgrids:      nItems,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for _, name := range []string{
		obs.MetricFlaggedVisibilities,
		obs.MetricItemRetries,
		obs.MetricItemSkips,
		obs.MetricKernelPanics,
		obs.MetricDroppedVisibilities,
	} {
		if got := snap.Counters[name]; got != 0 {
			t.Errorf("%s = %d, want 0 on a clean run", name, got)
		}
	}
	// Kernel dispatch-path counters must add up to one invocation per
	// item per pipeline.
	paths := snap.Counters[obs.MetricKernelPathReference] +
		snap.Counters[obs.MetricKernelPathTiled32] +
		snap.Counters[obs.MetricKernelPathTiled64] +
		snap.Counters[obs.MetricKernelPathVector] +
		snap.Counters[obs.MetricKernelPathVector32]
	if paths != 2*nItems {
		t.Errorf("kernel path counters sum to %d, want %d", paths, 2*nItems)
	}
	// Per-stage wall time was recorded for all five pipeline stages.
	for _, stage := range []obs.Stage{obs.StageGrid, obs.StageDegrid,
		obs.StageFFT, obs.StageAdd, obs.StageSplit} {
		if got := snap.Counters[obs.StageNsMetric(stage)]; got <= 0 {
			t.Errorf("%s = %d, want > 0", obs.StageNsMetric(stage), got)
		}
	}
	// The latency histogram saw every item of both passes.
	if got := snap.Histograms[obs.HistItemSeconds].Count; got != 2*nItems {
		t.Errorf("item latency count = %d, want %d", got, 2*nItems)
	}
}

// TestObserverTraceRoundTrip runs an observed pass and pushes the
// recorded trace through the JSON encoder and the new decoder
// (acceptance criteria), checking span structure along the way.
func TestObserverTraceRoundTrip(t *testing.T) {
	s, ob := observedScenario(t, defaultScenarioConfig())
	s.fillFromModel(nil)
	g := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g); err != nil {
		t.Fatal(err)
	}

	spans := ob.Tracer.Spans()
	stageSpans := map[obs.Stage]int{}
	itemSpans := 0
	for _, sp := range spans {
		if sp.Item < 0 {
			stageSpans[sp.Stage]++
			continue
		}
		itemSpans++
		if sp.Stage != obs.StageGrid {
			t.Fatalf("item span with stage %q, want grid", sp.Stage)
		}
		if sp.Worker < 0 || sp.Baseline < 0 {
			t.Fatalf("item span missing attribution: %+v", sp)
		}
	}
	for _, stage := range []obs.Stage{obs.StageGrid, obs.StageFFT, obs.StageAdd} {
		if stageSpans[stage] == 0 {
			t.Errorf("no stage-level span for %q", stage)
		}
	}
	if itemSpans != len(s.plan.Items) {
		t.Errorf("item spans = %d, want %d", itemSpans, len(s.plan.Items))
	}

	var buf bytes.Buffer
	if err := ob.Tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Spans, spans) {
		t.Fatal("trace JSON round trip changed the spans")
	}
	var chrome bytes.Buffer
	if err := ob.Tracer.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if chrome.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}

// TestObserverFlaggedAndFaultCounts checks the degradation-side
// metrics: flagged samples, recovered panics, retries, skips and
// dropped visibilities must mirror the faulttol report exactly.
func TestObserverFlaggedAndFaultCounts(t *testing.T) {
	s, ob := observedScenario(t, defaultScenarioConfig())
	s.fillFromModel(nil)
	// Flag one full timestep of baseline 0.
	for c := 0; c < s.vs.NrChannels; c++ {
		s.vs.FlagSample(0, 3, c)
	}

	// Panic on every attempt for one specific item: under SkipAndFlag
	// with one retry that is 2 recovered panics, 1 skip.
	var target plan.WorkItem
	for _, it := range s.plan.Items {
		if it.Baseline == 1 {
			target = it
			break
		}
	}
	ft := faulttol.Config{
		Policy:     faulttol.SkipAndFlag,
		MaxRetries: 1,
		Hook: func(item plan.WorkItem, attempt int) {
			if item.Baseline == target.Baseline && item.TimeStart == target.TimeStart &&
				item.Channel0 == target.Channel0 && item.X0 == target.X0 && item.Y0 == target.Y0 {
				panic("injected")
			}
		},
	}
	g := grid.NewGrid(s.plan.GridSize)
	_, rep, err := s.kernels.GridVisibilitiesFT(context.Background(), s.plan, s.vs, nil, g, ft)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ItemsSkipped != 1 {
		t.Fatalf("report skips = %d, want 1", rep.ItemsSkipped)
	}

	snap := ob.Metrics.Snapshot()
	if got := snap.Counters[obs.MetricKernelPanics]; got != 2 {
		t.Errorf("panics = %d, want 2 (initial attempt + retry)", got)
	}
	if got := snap.Counters[obs.MetricItemSkips]; got != int64(rep.ItemsSkipped) {
		t.Errorf("skips = %d, want %d", got, rep.ItemsSkipped)
	}
	if got := snap.Counters[obs.MetricDroppedVisibilities]; got != rep.DroppedVisibilities {
		t.Errorf("dropped = %d, want %d", got, rep.DroppedVisibilities)
	}
	if got := snap.Counters[obs.MetricItemRetries]; got != int64(rep.ItemsRetried) {
		t.Errorf("retries = %d, want %d", got, rep.ItemsRetried)
	}
	// The flagged timestep is seen once per plan item covering
	// (baseline 0, timestep 3): count those.
	var wantFlagged int64
	for _, it := range s.plan.Items {
		if it.Baseline == 0 && it.TimeStart <= 3 && 3 < it.TimeStart+it.NrTimesteps {
			wantFlagged += int64(it.NrChannels)
		}
	}
	if wantFlagged == 0 {
		t.Fatal("test bug: no plan item covers the flagged timestep")
	}
	if got := snap.Counters[obs.MetricFlaggedVisibilities]; got != wantFlagged {
		t.Errorf("flagged = %d, want %d", got, wantFlagged)
	}
	// Successful visibilities = plan total minus the dropped item.
	want := s.plan.Stats().NrGriddedVisibilities - rep.DroppedVisibilities
	if got := snap.Counters[obs.MetricGridVisibilities]; got != want {
		t.Errorf("gridded vis = %d, want %d", got, want)
	}
}

// TestObserverDisabledZeroCost pins the contract that makes a nil
// observer free: no allocations on the kernel hot path (the benchmark
// acceptance bar) and no instruments materialized anywhere.
func TestObserverDisabledZeroCost(t *testing.T) {
	s := buildScenario(t, defaultScenarioConfig())
	if s.kernels.ob != nil {
		t.Fatal("kernels without Params.Observer must carry a nil kernelObs")
	}
	s.fillFromModel(nil)
	item := s.plan.Items[0]
	sgr := grid.NewSubgrid(s.plan.SubgridSize, item.X0, item.Y0)
	visBuf := s.vs.Data[item.Baseline][:item.NrVisibilities()]
	// Warm the scratch pool, then demand zero allocations per call.
	s.kernels.GridSubgrid(item, s.vs.itemUVW(item), visBuf, nil, nil, sgr)
	if raceEnabled {
		// The instrumented sync.Pool drops items at random, so scratch
		// reuse is not guaranteed per call; the benchmarks and the
		// non-race run of this test pin the 0 allocs/op contract.
		t.Skip("allocation counts are unreliable under the race detector")
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.kernels.GridSubgrid(item, s.vs.itemUVW(item), visBuf, nil, nil, sgr)
	})
	if allocs != 0 {
		t.Errorf("GridSubgrid with nil observer: %v allocs/op, want 0", allocs)
	}
}
