package core

import (
	"context"
	"testing"

	"repro/internal/grid"
)

// flagEveryNth flags every nth sample of the set and returns the
// flagged count.
func flagEveryNth(vs *VisibilitySet, n int) int {
	count := 0
	for b := range vs.Data {
		for t := 0; t < vs.NrTimesteps; t++ {
			for c := 0; c < vs.NrChannels; c++ {
				if (b+t*vs.NrChannels+c)%n == 0 {
					vs.FlagSample(b, t, c)
					count++
				}
			}
		}
	}
	return count
}

// TestFlaggedSamplesAreZeroWeightInGridding: gridding a set with
// flagged samples must equal (exactly) gridding the same set with
// those samples zeroed and no flags — the definition of zero weight.
func TestFlaggedSamplesAreZeroWeightInGridding(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)
	s.fillFromModel(nil)

	// Reference: zero the victims by hand, no flags.
	zeroed := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	for b := range s.vs.Data {
		copy(zeroed.Data[b], s.vs.Data[b])
	}
	if n := flagEveryNth(s.vs, 7); n == 0 {
		t.Fatal("nothing flagged")
	}
	for b := range zeroed.Data {
		for i := range zeroed.Data[b] {
			if s.vs.Flags[b][i] {
				zeroed.Data[b][i] = [4]complex128{}
			}
		}
	}

	g1 := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g1); err != nil {
		t.Fatal(err)
	}
	g2 := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, zeroed, nil, g2); err != nil {
		t.Fatal(err)
	}
	for c := range g1.Data {
		for i := range g1.Data[c] {
			if g1.Data[c][i] != g2.Data[c][i] {
				t.Fatalf("plane %d pixel %d: flagged %v, zeroed reference %v",
					c, i, g1.Data[c][i], g2.Data[c][i])
			}
		}
	}
}

// TestDegriddingWritesZerosAtFlaggedSamples: the degridder predicts
// zeros for flagged samples and normal values elsewhere.
func TestDegriddingWritesZerosAtFlaggedSamples(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)
	s.fillFromModel(nil)
	g := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g); err != nil {
		t.Fatal(err)
	}

	out := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	if flagEveryNth(out, 5) == 0 {
		t.Fatal("nothing flagged")
	}
	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, out, nil, g); err != nil {
		t.Fatal(err)
	}
	zeros, nonzeros := 0, 0
	for b := range out.Data {
		for i, v := range out.Data[b] {
			if out.Flags[b][i] {
				if v != ([4]complex128{}) {
					t.Fatalf("flagged sample (b %d, i %d) predicted nonzero: %v", b, i, v)
				}
				zeros++
			} else if v != ([4]complex128{}) {
				nonzeros++
			}
		}
	}
	if zeros == 0 || nonzeros == 0 {
		t.Fatalf("degenerate prediction: %d zeros, %d nonzeros", zeros, nonzeros)
	}
}

// TestGridderDegridderAdjointWithFlags: with M the flag projection
// (zero-weight mask), the masked pipelines stay exact adjoints:
// <G(M v), g> == <v, M D(g)>.
func TestGridderDegridderAdjointWithFlags(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)

	rnd := newTestRand(7)
	for b := range s.vs.Data {
		for i := range s.vs.Data[b] {
			for p := 0; p < 4; p++ {
				s.vs.Data[b][i][p] = complex(rnd(), rnd())
			}
		}
	}
	if flagEveryNth(s.vs, 3) == 0 {
		t.Fatal("nothing flagged")
	}
	g := grid.NewGrid(s.plan.GridSize)
	for c := range g.Data {
		for i := range g.Data[c] {
			g.Data[c][i] = complex(rnd(), rnd())
		}
	}

	gv := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, gv); err != nil {
		t.Fatal(err)
	}
	var lhs complex128
	for c := range gv.Data {
		for i := range gv.Data[c] {
			lhs += gv.Data[c][i] * conj(g.Data[c][i])
		}
	}

	vsOut := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	vsOut.Flags = s.vs.Flags // same mask on the degridding side
	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, vsOut, nil, g); err != nil {
		t.Fatal(err)
	}
	// Flagged entries of vsOut are exactly zero, so summing over all
	// samples applies the mask on the right-hand side too.
	var rhs complex128
	for b := range s.vs.Data {
		for i := range s.vs.Data[b] {
			for p := 0; p < 4; p++ {
				rhs += s.vs.Data[b][i][p] * conj(vsOut.Data[b][i][p])
			}
		}
	}
	if d := cAbs(lhs-rhs) / cAbs(lhs); d > 1e-6 {
		t.Fatalf("masked adjoint violated: <G(Mv),g>=%v, <v,MD(g)>=%v (rel %g)", lhs, rhs, d)
	}
}

// TestAdderSplitterAdjoint: <Adder(S), g> == <S, Splitter(g)> over a
// batch of random subgrids, including nil slots left by degraded runs.
func TestAdderSplitterAdjoint(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)
	rnd := newTestRand(13)

	items := s.plan.Items
	if len(items) < 4 {
		t.Fatalf("plan too small: %d items", len(items))
	}
	subgrids := make([]*grid.Subgrid, len(items))
	for i, it := range items {
		if i%5 == 4 {
			continue // nil slot, as a skipped item would leave
		}
		sg := grid.NewSubgrid(s.plan.SubgridSize, it.X0, it.Y0)
		for c := range sg.Data {
			for j := range sg.Data[c] {
				sg.Data[c][j] = complex(rnd(), rnd())
			}
		}
		subgrids[i] = sg
	}
	g := grid.NewGrid(s.plan.GridSize)
	for c := range g.Data {
		for i := range g.Data[c] {
			g.Data[c][i] = complex(rnd(), rnd())
		}
	}

	// <Adder(S), g>
	added := grid.NewGrid(s.plan.GridSize)
	s.kernels.Adder(subgrids, added)
	var lhs complex128
	for c := range added.Data {
		for i := range added.Data[c] {
			lhs += added.Data[c][i] * conj(g.Data[c][i])
		}
	}

	// <S, Splitter(g)>
	split := make([]*grid.Subgrid, len(items))
	for i, it := range items {
		if subgrids[i] == nil {
			continue
		}
		split[i] = grid.NewSubgrid(s.plan.SubgridSize, it.X0, it.Y0)
	}
	s.kernels.Splitter(g, split)
	var rhs complex128
	for i := range subgrids {
		if subgrids[i] == nil {
			continue
		}
		for c := range subgrids[i].Data {
			for j := range subgrids[i].Data[c] {
				rhs += subgrids[i].Data[c][j] * conj(split[i].Data[c][j])
			}
		}
	}
	if d := cAbs(lhs-rhs) / cAbs(lhs); d > 1e-12 {
		t.Fatalf("adder/splitter adjoint violated: %v vs %v (rel %g)", lhs, rhs, d)
	}
}

// TestFlaggedRoundtripRecoversUnflaggedSamples: degrid(grid(model))
// with a flag mask predicts the model visibilities at unflagged
// samples as accurately as the unflagged roundtrip does.
func TestFlaggedRoundtripRecoversUnflaggedSamples(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)
	s.fillFromModel(nil)
	if flagEveryNth(s.vs, 9) == 0 {
		t.Fatal("nothing flagged")
	}

	// Build the model image and degrid it through the flagged set.
	n := s.plan.GridSize
	img := s.model.Rasterize(n, s.plan.ImageSize)
	mg := ImageToGrid(img, 0)
	out := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	out.Flags = s.vs.Flags
	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, out, nil, mg); err != nil {
		t.Fatal(err)
	}

	// The flagged degrid must agree with the unflagged degrid at every
	// unflagged sample: the mask only zeroes its own entries.
	var maxErr float64
	ref := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, ref, nil, mg); err != nil {
		t.Fatal(err)
	}
	for b := range out.Data {
		for i := range out.Data[b] {
			if s.vs.Flags[b][i] {
				continue
			}
			for p := 0; p < 4; p++ {
				if d := cAbs(out.Data[b][i][p] - ref.Data[b][i][p]); d > maxErr {
					maxErr = d
				}
			}
		}
	}
	if maxErr != 0 {
		t.Fatalf("flag mask perturbed unflagged predictions by %g", maxErr)
	}
}
