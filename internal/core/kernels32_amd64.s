//go:build amd64

#include "textflag.h"

// The hand-vectorized float32 inner loops of the gridder and degridder:
// the eight-lane (PS) analogues of the float64 quad kernels in
// kernels_amd64.s (see simd_amd64.go for the contract and layout).
// Every YMM register holds eight float32 lanes, so one iteration covers
// eight channels (rotAccOcts) or eight pixels (conjAccOcts, rotOcts).
// All three are leaf functions: NOSPLIT, no calls, VZEROUPPER before
// returning to Go code.

// func rotAccOcts(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph *float32)
//
// Gridder channel loop, eight channels per iteration. acc points at a
// [64]float32 block: eight accumulators x eight lanes, accumulator k's
// lanes at acc[8k:8k+8]. ph points at [18]float32: per-lane phasor
// sin at ph[0:8], cos at ph[8:16], and the eight-channel step rotator
// sin/cos at ph[16], ph[17]. The phasor register state is NOT written
// back: callers re-seed per resync chunk.
TEXT ·rotAccOcts(SB), NOSPLIT, $0-88
	MOVQ acc+0(FP), AX
	MOVQ r0+8(FP), SI
	MOVQ i0+16(FP), DI
	MOVQ r1+24(FP), R8
	MOVQ i1+32(FP), R9
	MOVQ r2+40(FP), R10
	MOVQ i2+48(FP), R11
	MOVQ r3+56(FP), R12
	MOVQ i3+64(FP), R13
	MOVQ no+72(FP), DX
	MOVQ ph+80(FP), BX

	VMOVUPS      (BX), Y0       // ps lanes
	VMOVUPS      32(BX), Y1     // pc lanes
	VBROADCASTSS 64(BX), Y2     // sin(8*delta)
	VBROADCASTSS 68(BX), Y3     // cos(8*delta)

	VMOVUPS (AX), Y4
	VMOVUPS 32(AX), Y5
	VMOVUPS 64(AX), Y6
	VMOVUPS 96(AX), Y7
	VMOVUPS 128(AX), Y8
	VMOVUPS 160(AX), Y9
	VMOVUPS 192(AX), Y10
	VMOVUPS 224(AX), Y11

octloop:
	VMOVUPS      (SI), Y12      // vr, correlation 0
	VMOVUPS      (DI), Y13      // vi
	VFMADD231PS  Y1, Y12, Y4    // a0 += vr*pc
	VFNMADD231PS Y0, Y13, Y4    // a0 -= vi*ps
	VFMADD231PS  Y0, Y12, Y5    // a1 += vr*ps
	VFMADD231PS  Y1, Y13, Y5    // a1 += vi*pc
	VMOVUPS      (R8), Y12
	VMOVUPS      (R9), Y13
	VFMADD231PS  Y1, Y12, Y6
	VFNMADD231PS Y0, Y13, Y6
	VFMADD231PS  Y0, Y12, Y7
	VFMADD231PS  Y1, Y13, Y7
	VMOVUPS      (R10), Y12
	VMOVUPS      (R11), Y13
	VFMADD231PS  Y1, Y12, Y8
	VFNMADD231PS Y0, Y13, Y8
	VFMADD231PS  Y0, Y12, Y9
	VFMADD231PS  Y1, Y13, Y9
	VMOVUPS      (R12), Y12
	VMOVUPS      (R13), Y13
	VFMADD231PS  Y1, Y12, Y10
	VFNMADD231PS Y0, Y13, Y10
	VFMADD231PS  Y0, Y12, Y11
	VFMADD231PS  Y1, Y13, Y11

	// Advance the phasor lanes by eight channels:
	// ps' = ps*dc8 + pc*ds8, pc' = pc*dc8 - ps*ds8.
	VMULPS       Y3, Y0, Y14
	VMULPS       Y3, Y1, Y15
	VFMADD231PS  Y2, Y1, Y14
	VFNMADD231PS Y2, Y0, Y15
	VMOVAPS      Y14, Y0
	VMOVAPS      Y15, Y1

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ DX
	JNZ  octloop

	VMOVUPS Y4, (AX)
	VMOVUPS Y5, 32(AX)
	VMOVUPS Y6, 64(AX)
	VMOVUPS Y7, 96(AX)
	VMOVUPS Y8, 128(AX)
	VMOVUPS Y9, 160(AX)
	VMOVUPS Y10, 192(AX)
	VMOVUPS Y11, 224(AX)
	VZEROUPPER
	RET

// func rotAccOctsBlk(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph *float32, nt, visAdj, phAdj int)
//
// Timestep-blocked rotAccOcts: one call covers nt time steps of one
// pixel, keeping the eight accumulator registers live across the whole
// block instead of round-tripping them through memory per time step —
// at the paper's channel counts the per-call accumulator traffic
// otherwise costs as much as the useful work. Per time step the
// phasor lanes and the rotator reload from a fresh [18]float32 block
// (ph advances by phAdj bytes per step), the channel loop runs no
// iterations, and the visibility pointers then advance by visAdj bytes
// (= 4*nc - 32*no) to the next time step's channel 0. The arithmetic
// sequence per (time step, channel) is identical to per-step
// rotAccOcts calls, so results are bitwise equal to the unblocked
// form.
TEXT ·rotAccOctsBlk(SB), NOSPLIT, $0-112
	MOVQ acc+0(FP), AX
	MOVQ r0+8(FP), SI
	MOVQ i0+16(FP), DI
	MOVQ r1+24(FP), R8
	MOVQ i1+32(FP), R9
	MOVQ r2+40(FP), R10
	MOVQ i2+48(FP), R11
	MOVQ r3+56(FP), R12
	MOVQ i3+64(FP), R13
	MOVQ no+72(FP), R15
	MOVQ ph+80(FP), BX
	MOVQ nt+88(FP), CX
	MOVQ visAdj+96(FP), R14

	VMOVUPS (AX), Y4
	VMOVUPS 32(AX), Y5
	VMOVUPS 64(AX), Y6
	VMOVUPS 96(AX), Y7
	VMOVUPS 128(AX), Y8
	VMOVUPS 160(AX), Y9
	VMOVUPS 192(AX), Y10
	VMOVUPS 224(AX), Y11

blktloop:
	VMOVUPS      (BX), Y0       // ps lanes of this time step
	VMOVUPS      32(BX), Y1     // pc lanes
	VBROADCASTSS 64(BX), Y2     // sin(8*delta)
	VBROADCASTSS 68(BX), Y3     // cos(8*delta)
	MOVQ         R15, DX

blkoctloop:
	VMOVUPS      (SI), Y12      // vr, correlation 0
	VMOVUPS      (DI), Y13      // vi
	VFMADD231PS  Y1, Y12, Y4    // a0 += vr*pc
	VFNMADD231PS Y0, Y13, Y4    // a0 -= vi*ps
	VFMADD231PS  Y0, Y12, Y5    // a1 += vr*ps
	VFMADD231PS  Y1, Y13, Y5    // a1 += vi*pc
	VMOVUPS      (R8), Y12
	VMOVUPS      (R9), Y13
	VFMADD231PS  Y1, Y12, Y6
	VFNMADD231PS Y0, Y13, Y6
	VFMADD231PS  Y0, Y12, Y7
	VFMADD231PS  Y1, Y13, Y7
	VMOVUPS      (R10), Y12
	VMOVUPS      (R11), Y13
	VFMADD231PS  Y1, Y12, Y8
	VFNMADD231PS Y0, Y13, Y8
	VFMADD231PS  Y0, Y12, Y9
	VFMADD231PS  Y1, Y13, Y9
	VMOVUPS      (R12), Y12
	VMOVUPS      (R13), Y13
	VFMADD231PS  Y1, Y12, Y10
	VFNMADD231PS Y0, Y13, Y10
	VFMADD231PS  Y0, Y12, Y11
	VFMADD231PS  Y1, Y13, Y11

	// Advance the phasor lanes by eight channels (see rotAccOcts).
	VMULPS       Y3, Y0, Y14
	VMULPS       Y3, Y1, Y15
	VFMADD231PS  Y2, Y1, Y14
	VFNMADD231PS Y2, Y0, Y15
	VMOVAPS      Y14, Y0
	VMOVAPS      Y15, Y1

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ DX
	JNZ  blkoctloop

	ADDQ R14, SI
	ADDQ R14, DI
	ADDQ R14, R8
	ADDQ R14, R9
	ADDQ R14, R10
	ADDQ R14, R11
	ADDQ R14, R12
	ADDQ R14, R13
	MOVQ phAdj+104(FP), DX
	ADDQ DX, BX
	DECQ CX
	JNZ  blktloop

	VMOVUPS Y4, (AX)
	VMOVUPS Y5, 32(AX)
	VMOVUPS Y6, 64(AX)
	VMOVUPS Y7, 96(AX)
	VMOVUPS Y8, 128(AX)
	VMOVUPS Y9, 160(AX)
	VMOVUPS Y10, 192(AX)
	VMOVUPS Y11, 224(AX)
	VZEROUPPER
	RET

// func seedOctsBlk(ph, s0, c0, ds, dc *float64, ng int)
//
// Vectorized seedOctLanes over time steps: each iteration seeds FOUR
// consecutive time steps' 18-wide phasor register blocks from the
// planar base/delta sincos results (s0/c0 hold sin/cos of the chunk
// base per step, ds/dc of the per-channel delta). The arithmetic is
// element-wise identical to seedOctLanes — the same unfused multiply
// and add sequence, four steps per VMULPD/VADDPD/VSUBPD — so results
// are bitwise equal to the scalar Go seeding (2*x is computed as x+x,
// which rounds identically). The caller handles ng%4 leftover steps
// with seedOctLanes. Output blocks are float64; the caller narrows
// with xmath.CvtF64F32.
//
// Register map per iteration: Y0-Y1 s0/c0 (later lanes 4-7 s/c of
// lane 0), Y2-Y3 ds/dc then scratch, Y10-Y15 lanes 1-3 s/c, Y4-Y5
// ds2/dc2 then scratch, Y6-Y7 ds4/dc4, Y8-Y9 rotator sin/cos.
// Transposed stores go through VUNPCKL/HPD pairs and 128-bit halves
// (low half via X register, high half via VEXTRACTF128-to-memory), so
// the lane vectors survive for the lanes-4-7 pass. Block stride is
// 18 floats = 144 bytes.
TEXT ·seedOctsBlk(SB), NOSPLIT, $0-48
	MOVQ ph+0(FP), DI
	MOVQ s0+8(FP), SI
	MOVQ c0+16(FP), BX
	MOVQ ds+24(FP), R8
	MOVQ dc+32(FP), R9
	MOVQ ng+40(FP), CX

seedloop:
	VMOVUPD (SI), Y0  // s0
	VMOVUPD (BX), Y1  // c0
	VMOVUPD (R8), Y2  // ds
	VMOVUPD (R9), Y3  // dc

	// Lanes 1-3 by single-delta rotations (sk*dc+ck*ds, ck*dc-sk*ds).
	VMULPD Y3, Y0, Y10
	VMULPD Y2, Y1, Y11
	VADDPD Y11, Y10, Y10 // s1
	VMULPD Y3, Y1, Y11
	VMULPD Y2, Y0, Y12
	VSUBPD Y12, Y11, Y11 // c1
	VMULPD Y3, Y10, Y12
	VMULPD Y2, Y11, Y13
	VADDPD Y13, Y12, Y12 // s2
	VMULPD Y3, Y11, Y13
	VMULPD Y2, Y10, Y14
	VSUBPD Y14, Y13, Y13 // c2
	VMULPD Y3, Y12, Y14
	VMULPD Y2, Y13, Y15
	VADDPD Y15, Y14, Y14 // s3
	VMULPD Y3, Y13, Y15
	VMULPD Y2, Y12, Y4
	VSUBPD Y4, Y15, Y15  // c3

	// Double-angle chain: delta -> 2*delta -> 4*delta (lane-4 rotation)
	// -> 8*delta (the kernel rotator).
	VADDPD Y2, Y2, Y4
	VMULPD Y3, Y4, Y4 // ds2 = (2*ds)*dc
	VMULPD Y3, Y3, Y5
	VMULPD Y2, Y2, Y6
	VSUBPD Y6, Y5, Y5 // dc2 = dc*dc - ds*ds
	VADDPD Y4, Y4, Y6
	VMULPD Y5, Y6, Y6 // ds4
	VMULPD Y5, Y5, Y7
	VMULPD Y4, Y4, Y8
	VSUBPD Y8, Y7, Y7 // dc4
	VADDPD Y6, Y6, Y8
	VMULPD Y7, Y8, Y8 // rotator sin
	VMULPD Y7, Y7, Y9
	VMULPD Y6, Y6, Y2
	VSUBPD Y2, Y9, Y9 // rotator cos

	// Transposed stores: lanes 0-3 sin -> ph[t][0:4] (bytes +0).
	VUNPCKLPD    Y10, Y0, Y2
	VUNPCKHPD    Y10, Y0, Y3
	VUNPCKLPD    Y14, Y12, Y4
	VUNPCKHPD    Y14, Y12, Y5
	VMOVUPD      X2, (DI)
	VMOVUPD      X4, 16(DI)
	VMOVUPD      X3, 144(DI)
	VMOVUPD      X5, 160(DI)
	VEXTRACTF128 $1, Y2, 288(DI)
	VEXTRACTF128 $1, Y4, 304(DI)
	VEXTRACTF128 $1, Y3, 432(DI)
	VEXTRACTF128 $1, Y5, 448(DI)

	// Lanes 0-3 cos -> ph[t][8:12] (bytes +64).
	VUNPCKLPD    Y11, Y1, Y2
	VUNPCKHPD    Y11, Y1, Y3
	VUNPCKLPD    Y15, Y13, Y4
	VUNPCKHPD    Y15, Y13, Y5
	VMOVUPD      X2, 64(DI)
	VMOVUPD      X4, 80(DI)
	VMOVUPD      X3, 208(DI)
	VMOVUPD      X5, 224(DI)
	VEXTRACTF128 $1, Y2, 352(DI)
	VEXTRACTF128 $1, Y4, 368(DI)
	VEXTRACTF128 $1, Y3, 496(DI)
	VEXTRACTF128 $1, Y5, 512(DI)

	// Rotator -> ph[t][16:18] (bytes +128).
	VUNPCKLPD    Y9, Y8, Y2
	VUNPCKHPD    Y9, Y8, Y3
	VMOVUPD      X2, 128(DI)
	VMOVUPD      X3, 272(DI)
	VEXTRACTF128 $1, Y2, 416(DI)
	VEXTRACTF128 $1, Y3, 560(DI)

	// Lanes 4-7 in place: rotate lanes 0-3 by exp(i*4*delta)
	// (cos part first so the sin source survives).
	VMULPD  Y7, Y1, Y2
	VMULPD  Y6, Y0, Y3
	VSUBPD  Y3, Y2, Y2
	VMULPD  Y7, Y0, Y3
	VMULPD  Y6, Y1, Y4
	VADDPD  Y4, Y3, Y0  // s4
	VMOVAPD Y2, Y1      // c4
	VMULPD  Y7, Y11, Y2
	VMULPD  Y6, Y10, Y3
	VSUBPD  Y3, Y2, Y2
	VMULPD  Y7, Y10, Y3
	VMULPD  Y6, Y11, Y4
	VADDPD  Y4, Y3, Y10 // s5
	VMOVAPD Y2, Y11     // c5
	VMULPD  Y7, Y13, Y2
	VMULPD  Y6, Y12, Y3
	VSUBPD  Y3, Y2, Y2
	VMULPD  Y7, Y12, Y3
	VMULPD  Y6, Y13, Y4
	VADDPD  Y4, Y3, Y12 // s6
	VMOVAPD Y2, Y13     // c6
	VMULPD  Y7, Y15, Y2
	VMULPD  Y6, Y14, Y3
	VSUBPD  Y3, Y2, Y2
	VMULPD  Y7, Y14, Y3
	VMULPD  Y6, Y15, Y4
	VADDPD  Y4, Y3, Y14 // s7
	VMOVAPD Y2, Y15     // c7

	// Lanes 4-7 sin -> ph[t][4:8] (bytes +32).
	VUNPCKLPD    Y10, Y0, Y2
	VUNPCKHPD    Y10, Y0, Y3
	VUNPCKLPD    Y14, Y12, Y4
	VUNPCKHPD    Y14, Y12, Y5
	VMOVUPD      X2, 32(DI)
	VMOVUPD      X4, 48(DI)
	VMOVUPD      X3, 176(DI)
	VMOVUPD      X5, 192(DI)
	VEXTRACTF128 $1, Y2, 320(DI)
	VEXTRACTF128 $1, Y4, 336(DI)
	VEXTRACTF128 $1, Y3, 464(DI)
	VEXTRACTF128 $1, Y5, 480(DI)

	// Lanes 4-7 cos -> ph[t][12:16] (bytes +96).
	VUNPCKLPD    Y11, Y1, Y2
	VUNPCKHPD    Y11, Y1, Y3
	VUNPCKLPD    Y15, Y13, Y4
	VUNPCKHPD    Y15, Y13, Y5
	VMOVUPD      X2, 96(DI)
	VMOVUPD      X4, 112(DI)
	VMOVUPD      X3, 240(DI)
	VMOVUPD      X5, 256(DI)
	VEXTRACTF128 $1, Y2, 384(DI)
	VEXTRACTF128 $1, Y4, 400(DI)
	VEXTRACTF128 $1, Y3, 528(DI)
	VEXTRACTF128 $1, Y5, 544(DI)

	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $576, DI
	DECQ CX
	JNZ  seedloop

	VZEROUPPER
	RET

// func conjAccOcts(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float32, no int)
//
// Degridder pixel loop, eight pixels per iteration: accumulates
// sum_i conj(phasor_i) * pixel_i over 8*no pixels into the eight
// scalars at out (re/im per correlation). Vector partial sums reduce
// ((l0+l4)+(l1+l5))+((l2+l6)+(l3+l7)) on exit and ADD into out.
TEXT ·conjAccOcts(SB), NOSPLIT, $0-96
	MOVQ out+0(FP), AX
	MOVQ phRe+8(FP), BX
	MOVQ phIm+16(FP), CX
	MOVQ p0r+24(FP), SI
	MOVQ p0i+32(FP), DI
	MOVQ p1r+40(FP), R8
	MOVQ p1i+48(FP), R9
	MOVQ p2r+56(FP), R10
	MOVQ p2i+64(FP), R11
	MOVQ p3r+72(FP), R12
	MOVQ p3i+80(FP), R13
	MOVQ no+88(FP), DX

	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

pixloop:
	VMOVUPS (BX), Y0            // cr = phRe
	VMOVUPS (CX), Y1            // -ci = phIm (conjugate phasor)
	VMOVUPS      (SI), Y12      // vr, correlation 0
	VMOVUPS      (DI), Y13      // vi
	VFMADD231PS  Y0, Y12, Y4    // s_re += vr*cr
	VFMADD231PS  Y1, Y13, Y4    // s_re += vi*phIm  (= -vi*ci)
	VFNMADD231PS Y1, Y12, Y5    // s_im -= vr*phIm  (= +vr*ci)
	VFMADD231PS  Y0, Y13, Y5    // s_im += vi*cr
	VMOVUPS      (R8), Y12
	VMOVUPS      (R9), Y13
	VFMADD231PS  Y0, Y12, Y6
	VFMADD231PS  Y1, Y13, Y6
	VFNMADD231PS Y1, Y12, Y7
	VFMADD231PS  Y0, Y13, Y7
	VMOVUPS      (R10), Y12
	VMOVUPS      (R11), Y13
	VFMADD231PS  Y0, Y12, Y8
	VFMADD231PS  Y1, Y13, Y8
	VFNMADD231PS Y1, Y12, Y9
	VFMADD231PS  Y0, Y13, Y9
	VMOVUPS      (R12), Y12
	VMOVUPS      (R13), Y13
	VFMADD231PS  Y0, Y12, Y10
	VFMADD231PS  Y1, Y13, Y10
	VFNMADD231PS Y1, Y12, Y11
	VFMADD231PS  Y0, Y13, Y11

	ADDQ $32, BX
	ADDQ $32, CX
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ DX
	JNZ  pixloop

	// Reduce each accumulator's eight lanes and add into out[k].
	// VEXTRACTF128 folds the upper half onto the lower
	// (l0+l4 .. l3+l7); two HADDPS passes sum the remaining quad as
	// ((l0+l4)+(l1+l5))+((l2+l6)+(l3+l7)).
	VEXTRACTF128 $1, Y4, X12
	VADDPS       X12, X4, X4
	VHADDPS      X4, X4, X4
	VHADDPS      X4, X4, X4
	VEXTRACTF128 $1, Y5, X12
	VADDPS       X12, X5, X5
	VHADDPS      X5, X5, X5
	VHADDPS      X5, X5, X5
	VEXTRACTF128 $1, Y6, X12
	VADDPS       X12, X6, X6
	VHADDPS      X6, X6, X6
	VHADDPS      X6, X6, X6
	VEXTRACTF128 $1, Y7, X12
	VADDPS       X12, X7, X7
	VHADDPS      X7, X7, X7
	VHADDPS      X7, X7, X7
	VEXTRACTF128 $1, Y8, X12
	VADDPS       X12, X8, X8
	VHADDPS      X8, X8, X8
	VHADDPS      X8, X8, X8
	VEXTRACTF128 $1, Y9, X12
	VADDPS       X12, X9, X9
	VHADDPS      X9, X9, X9
	VHADDPS      X9, X9, X9
	VEXTRACTF128 $1, Y10, X12
	VADDPS       X12, X10, X10
	VHADDPS      X10, X10, X10
	VHADDPS      X10, X10, X10
	VEXTRACTF128 $1, Y11, X12
	VADDPS       X12, X11, X11
	VHADDPS      X11, X11, X11
	VHADDPS      X11, X11, X11

	VADDSS (AX), X4, X4
	VMOVSS X4, (AX)
	VADDSS 4(AX), X5, X5
	VMOVSS X5, 4(AX)
	VADDSS 8(AX), X6, X6
	VMOVSS X6, 8(AX)
	VADDSS 12(AX), X7, X7
	VMOVSS X7, 12(AX)
	VADDSS 16(AX), X8, X8
	VMOVSS X8, 16(AX)
	VADDSS 20(AX), X9, X9
	VMOVSS X9, 20(AX)
	VADDSS 24(AX), X10, X10
	VMOVSS X10, 24(AX)
	VADDSS 28(AX), X11, X11
	VMOVSS X11, 28(AX)
	VZEROUPPER
	RET

// func rotOcts(phRe, phIm, dRe, dIm *float32, no int)
//
// Degridder phasor rotation pass, eight pixels per iteration:
// phIm' = phIm*dRe + phRe*dIm, phRe' = phRe*dRe - phIm*dIm.
TEXT ·rotOcts(SB), NOSPLIT, $0-40
	MOVQ phRe+0(FP), AX
	MOVQ phIm+8(FP), BX
	MOVQ dRe+16(FP), CX
	MOVQ dIm+24(FP), SI
	MOVQ no+32(FP), DX

rotloop:
	VMOVUPS      (AX), Y0       // co
	VMOVUPS      (BX), Y1       // s
	VMOVUPS      (CX), Y2       // dRe
	VMOVUPS      (SI), Y3       // dIm
	VMULPS       Y2, Y1, Y4     // s*dRe
	VFMADD231PS  Y3, Y0, Y4     // += co*dIm -> phIm'
	VMULPS       Y2, Y0, Y5     // co*dRe
	VFNMADD231PS Y3, Y1, Y5     // -= s*dIm -> phRe'
	VMOVUPS      Y4, (BX)
	VMOVUPS      Y5, (AX)
	ADDQ         $32, AX
	ADDQ         $32, BX
	ADDQ         $32, CX
	ADDQ         $32, SI
	DECQ         DX
	JNZ          rotloop
	VZEROUPPER
	RET
