// Package fft implements the discrete Fourier transforms the IDG
// pipeline needs: plan-based 1-D complex transforms (iterative radix-2
// for power-of-two sizes, Bluestein's algorithm for everything else),
// 2-D transforms, centered (fftshift-ed) transforms, and batched
// parallel execution. It plays the role MKL, cuFFT and clFFT play in
// the paper: the subgrid FFTs and the final grid FFT.
//
// Conventions: Forward computes X[k] = sum_j x[j] exp(-2*pi*i*j*k/n)
// (unnormalized); Inverse applies the opposite sign and scales by 1/n,
// so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/xmath"
)

// planTier resolves the SIMD tier a new plan's kernels dispatch on.
// It is a variable so the test suite can force the scalar tier without
// touching the process-wide IDG_SIMD override.
var planTier = xmath.ActiveSIMD

// Plan holds the precomputed tables for transforms of one size.
// A Plan is safe for concurrent use by multiple goroutines: all state
// is read-only after construction, and scratch buffers are pooled per
// plan (Bluestein, mixed-radix) or not needed (power-of-two).
type Plan struct {
	n    int
	pow2 bool
	tier xmath.SIMDTier

	// Power-of-two tables: the bit-reversal permutation is shared by
	// the fused radix-4 engine (radix4.go) and the legacy radix-2 path
	// kept for ablation comparisons; twiddle is the legacy n/2 table.
	perm    []int32
	twiddle []complex128
	r4      *r4Plan

	// Mixed-radix plan for 2/3/5-smooth lengths (nil otherwise).
	mixed *mixedPlan

	// Bluestein tables (nil for power-of-two sizes).
	bm         int          // convolution size (power of two >= 2n-1)
	bPlan      *Plan        // power-of-two plan of size bm
	chirp      []complex128 // exp(-i*pi*k^2/n), k = 0..n-1
	bKernelFFT []complex128 // FFT of the chirp convolution kernel
	bPool      sync.Pool    // *[]complex128 of length bm (conv scratch)
}

// NewPlan creates a transform plan for length n. It panics if n < 1,
// matching the contract of the standard library's panics on programmer
// error (a transform length is never data-dependent in this codebase).
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &Plan{n: n, tier: planTier()}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.initRadix2()
		p.r4 = newR4Plan(n)
		return p
	}
	if factors, ok := smoothFactors(n); ok {
		p.mixed = newMixedPlan(n, factors)
		return p
	}
	p.initBluestein()
	return p
}

// N returns the transform length of the plan.
func (p *Plan) N() int { return p.n }

func (p *Plan) initRadix2() {
	n := p.n
	logN := bits.TrailingZeros(uint(n))
	p.perm = make([]int32, n)
	for i := 0; i < n; i++ {
		p.perm[i] = int32(bits.Reverse32(uint32(i)) >> (32 - logN))
	}
	p.twiddle = make([]complex128, n/2)
	for i := range p.twiddle {
		ang := -2 * math.Pi * float64(i) / float64(n)
		p.twiddle[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	if n == 1 {
		p.perm[0] = 0
	}
}

func (p *Plan) initBluestein() {
	n := p.n
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.bm = m
	p.bPlan = NewPlan(m)
	p.chirp = make([]complex128, n)
	kernel := make([]complex128, m)
	for k := 0; k < n; k++ {
		// Use k^2 mod 2n to keep the angle small and exact.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := -math.Pi * float64(kk) / float64(n)
		c := complex(math.Cos(ang), math.Sin(ang))
		p.chirp[k] = c
		kernel[k] = complex(real(c), -imag(c)) // conj: exp(+i...)
		if k > 0 {
			kernel[m-k] = kernel[k]
		}
	}
	p.bPlan.forwardPow2(kernel, false)
	p.bKernelFFT = kernel
	p.bPool.New = func() interface{} {
		buf := make([]complex128, m)
		return &buf
	}
}

// Forward transforms x in place with the negative-exponent convention.
// It panics if len(x) != N().
func (p *Plan) Forward(x []complex128) {
	p.checkLen(x)
	if p.pow2 {
		p.forwardPow2(x, false)
		return
	}
	if p.mixed != nil {
		p.mixed.forward(x)
		return
	}
	p.bluesteinPooled(x)
}

// Inverse transforms x in place with the positive-exponent convention
// and scales by 1/n, so that Inverse is the exact inverse of Forward.
func (p *Plan) Inverse(x []complex128) {
	p.checkLen(x)
	if p.pow2 {
		p.forwardPow2(x, true)
		inv := 1 / float64(p.n)
		for i, v := range x {
			x[i] = complex(real(v)*inv, imag(v)*inv)
		}
		return
	}
	// inverse(x) = conj(forward(conj(x))) / n
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	p.Forward(x)
	inv := 1 / float64(p.n)
	for i, v := range x {
		x[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

// scratchLen is the caller-supplied scratch size forwardWith and
// backwardWith need: zero for power-of-two plans (fully in place), 2n
// for mixed-radix, the convolution length for Bluestein.
func (p *Plan) scratchLen() int {
	switch {
	case p.pow2:
		return 0
	case p.mixed != nil:
		return 2 * p.n
	default:
		return p.bm
	}
}

// forwardWith is Forward with caller-supplied scratch (len >=
// scratchLen()), letting the 2-D driver keep every transform of a
// plane on one pooled buffer.
func (p *Plan) forwardWith(x, scratch []complex128) {
	switch {
	case p.pow2:
		p.forwardPow2(x, false)
	case p.mixed != nil:
		p.mixed.forwardWith(x, scratch)
	default:
		p.bluestein(x, scratch)
	}
}

// backwardWith runs the unnormalized positive-exponent transform; the
// caller folds the 1/n scale into its output pass.
func (p *Plan) backwardWith(x, scratch []complex128) {
	if p.pow2 {
		p.forwardPow2(x, true)
		return
	}
	// backward(x) = conj(forward(conj(x))); the conjugation sweeps run
	// over in-cache data and cost a fraction of the transform.
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	p.forwardWith(x, scratch)
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
}

// forwardLegacy is the pre-radix-4 transform (iterative radix-2 for
// powers of two), kept selectable so the ablation path and the test
// suite can compare the engines.
func (p *Plan) forwardLegacy(x []complex128) {
	if p.pow2 {
		p.forwardRadix2(x)
		return
	}
	if p.mixed != nil {
		p.mixed.forward(x)
		return
	}
	p.bluesteinPooled(x)
}

// inverseLegacy mirrors the seed Inverse: conj/forward/conj with the
// scale fused into the final conjugation.
func (p *Plan) inverseLegacy(x []complex128) {
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	p.forwardLegacy(x)
	inv := 1 / float64(p.n)
	for i, v := range x {
		x[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

func (p *Plan) checkLen(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), p.n))
	}
}

func (p *Plan) forwardRadix2(x []complex128) {
	n := p.n
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	for i, pi := range p.perm {
		if int32(i) < pi {
			x[i], x[pi] = x[pi], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			tw := 0
			for j := base; j < base+half; j++ {
				w := p.twiddle[tw]
				t := w * x[j+half]
				x[j+half] = x[j] - t
				x[j] = x[j] + t
				tw += step
			}
		}
	}
}

// bluesteinPooled runs bluestein on scratch borrowed from the plan's
// pool, so repeated public Forward calls allocate nothing.
func (p *Plan) bluesteinPooled(x []complex128) {
	bufp := p.bPool.Get().(*[]complex128)
	p.bluestein(x, *bufp)
	p.bPool.Put(bufp)
}

func (p *Plan) bluestein(x, scratch []complex128) {
	n, m := p.n, p.bm
	a := scratch[:m]
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	// Pooled scratch arrives dirty: the convolution input must be
	// zero-padded to m.
	for k := n; k < m; k++ {
		a[k] = 0
	}
	p.bPlan.forwardPow2(a, false)
	for i := range a {
		a[i] *= p.bKernelFFT[i]
	}
	p.bPlan.forwardPow2(a, true) // unnormalized backward
	inv := 1 / float64(m)
	for k := 0; k < n; k++ {
		v := complex(real(a[k])*inv, imag(a[k])*inv)
		x[k] = v * p.chirp[k]
	}
}

// DFTDirect computes the forward DFT by direct summation. It is O(n^2)
// and exists as the ground-truth reference for the test suite.
func DFTDirect(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}
