package repro

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// checkpointGoldenObservation builds the golden observation with
// bit-deterministic streaming (one shard, one worker) checkpointing
// into dir every 2 chunks, with hook installed as the crash-injection
// seam. Chunks of 32 items cut the golden plan into enough epochs to
// place kills before, between and after snapshots.
func checkpointGoldenObservation(t *testing.T, dir string, hook CheckpointHook, observer *Observer) *Observation {
	t.Helper()
	o := goldenObservation(t)
	o.Config.CheckpointDir = dir
	o.Config.CheckpointEvery = 2
	p := o.Kernels.Params()
	p.GridShards = 1
	p.StreamChunkItems = 32
	p.CheckpointDir = dir
	p.CheckpointEvery = 2
	p.CheckpointHook = hook
	p.Observer = observer
	k, err := core.NewKernels(p)
	if err != nil {
		t.Fatal(err)
	}
	o.Kernels = k
	return o
}

// goldenSHA reads the committed golden grid fingerprint.
func goldenSHA(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(goldenGridFile)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenGridConformance -update .` to create it)", err)
	}
	var want goldenGrid
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want.SHA256
}

// goldenChunks is the golden plan's chunk count at the streaming
// parameters of checkpointGoldenObservation.
func goldenChunks(o *Observation) int {
	per := o.Kernels.StreamChunkItemsResolved()
	return (len(o.Plan.Items) + per - 1) / per
}

// TestKillAndResumeChaos is the acceptance property of the issue: a
// streamed checkpointed run killed at any injected crash point, then
// resumed via ResumeStreamed, finishes with a grid whose SHA-256
// matches the uninterrupted golden grid bit-for-bit.
func TestKillAndResumeChaos(t *testing.T) {
	want := goldenSHA(t)
	kills := []struct {
		name string
		ev   CheckpointEvent
		at   int
	}{
		// Mid-epoch: work done past the last snapshot is lost and must
		// be regridded on resume.
		{"chunk-committed", CheckpointChunkCommitted, 2},
		// At the barrier, before any bytes hit disk.
		{"before-write", CheckpointBeforeWrite, -1},
		// The torn-write window: temp file synced, rename pending.
		{"before-rename", CheckpointBeforeRename, -1},
		// Snapshot durable; the crash loses only scheduler state.
		{"after-write", CheckpointAfterWrite, -1},
	}
	for _, kc := range kills {
		t.Run(kc.name, func(t *testing.T) {
			dir := t.TempDir()
			o := checkpointGoldenObservation(t, dir, faultinject.CrashHook(kc.ev, kc.at), nil)

			func() {
				defer func() {
					r := recover()
					if _, ok := r.(faultinject.Kill); !ok {
						t.Fatalf("expected a faultinject.Kill, recovered %v", r)
					}
				}()
				o.GridAllStreamed(context.Background(), nil, FaultConfig{})
				t.Fatal("run completed without hitting the crash point")
			}()

			// A fresh process: new observation over the same data,
			// no hook, resuming from whatever the crash left behind.
			o2 := checkpointGoldenObservation(t, dir, nil, nil)
			g, _, rep, err := o2.ResumeStreamed(context.Background(), nil, FaultConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprintGrid(g).SHA256; got != want {
				t.Errorf("resumed grid hash %s, want golden %s (notes: %v)", got, want, rep.Notes)
			}
			if rep.ItemsProcessed != len(o2.Plan.Items) {
				t.Errorf("resumed report counts %d of %d items", rep.ItemsProcessed, len(o2.Plan.Items))
			}
			if rep.Degraded() {
				t.Errorf("kill-and-resume degraded the run: %s", rep)
			}
		})
	}
}

// corruptNewest flips a byte deep inside the newest checkpoint file.
func corruptNewest(t *testing.T, dir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.idgckpt"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no checkpoints to corrupt: %v %v", names, err)
	}
	path := names[len(names)-1]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeFallsBackPastCorruptCheckpoint: bit rot in the newest
// snapshot falls back to its predecessor (recorded as a report note)
// and still reproduces the golden bits.
func TestResumeFallsBackPastCorruptCheckpoint(t *testing.T) {
	want := goldenSHA(t)
	dir := t.TempDir()
	o := checkpointGoldenObservation(t, dir, nil, nil)
	if _, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	corruptNewest(t, dir)

	o2 := checkpointGoldenObservation(t, dir, nil, nil)
	g, _, rep, err := o2.ResumeStreamed(context.Background(), nil, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintGrid(g).SHA256; got != want {
		t.Errorf("fallback-resumed grid hash %s, want golden %s", got, want)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "falling back") {
			found = true
		}
	}
	if !found {
		t.Errorf("report notes %v lack a fallback note", rep.Notes)
	}
	if rep.Degraded() {
		t.Errorf("checkpoint fallback degraded the run: %s", rep)
	}
}

// TestResumeAllCorruptCleanRestart: when every snapshot is unusable
// the resume degrades to a clean full run — noted, never failed.
func TestResumeAllCorruptCleanRestart(t *testing.T) {
	want := goldenSHA(t)
	dir := t.TempDir()
	o := checkpointGoldenObservation(t, dir, nil, nil)
	if _, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.idgckpt"))
	if err != nil || len(names) == 0 {
		t.Fatal("run wrote no checkpoints")
	}
	for _, path := range names {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/4], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	o2 := checkpointGoldenObservation(t, dir, nil, nil)
	g, _, rep, err := o2.ResumeStreamed(context.Background(), nil, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintGrid(g).SHA256; got != want {
		t.Errorf("clean-restart grid hash %s, want golden %s", got, want)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "clean restart") {
			found = true
		}
	}
	if !found {
		t.Errorf("report notes %v lack the clean-restart note", rep.Notes)
	}
}

// TestResumeMismatchedChunking: a snapshot's chunk cursor is
// meaningless under different chunking, so resuming with another
// StreamChunkItems must fail with ErrCheckpointMismatch.
func TestResumeMismatchedChunking(t *testing.T) {
	dir := t.TempDir()
	o := checkpointGoldenObservation(t, dir, nil, nil)
	if _, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{}); err != nil {
		t.Fatal(err)
	}

	o2 := checkpointGoldenObservation(t, dir, nil, nil)
	p := o2.Kernels.Params()
	p.StreamChunkItems = 16
	k, err := core.NewKernels(p)
	if err != nil {
		t.Fatal(err)
	}
	o2.Kernels = k
	if _, _, _, err := o2.ResumeStreamed(context.Background(), nil, FaultConfig{}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("mismatched chunking resumed with err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestCheckpointRoundTripGolden: the final snapshot of a completed run
// holds the full golden grid bit-for-bit with its cursor at the
// plan's last chunk — the durable file really is the run.
func TestCheckpointRoundTripGolden(t *testing.T) {
	want := goldenSHA(t)
	dir := t.TempDir()
	o := checkpointGoldenObservation(t, dir, nil, nil)
	if _, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	sn, path, notes, err := LatestCheckpoint(dir)
	if err != nil || sn == nil {
		t.Fatalf("LoadLatest: %v %v", sn, err)
	}
	if len(notes) != 0 {
		t.Fatalf("clean run left unusable checkpoints: %v", notes)
	}
	if sn.NextChunk != goldenChunks(o) {
		t.Fatalf("final snapshot %s has cursor %d, plan has %d chunks", path, sn.NextChunk, goldenChunks(o))
	}
	if got := fingerprintGrid(sn.Grid).SHA256; got != want {
		t.Errorf("snapshot grid hash %s, want golden %s", got, want)
	}
}

// TestStreamedCancelDuringRetry (satellite): cancellation surfacing
// inside the retry layer must classify as ErrCanceled — and the
// context's own sentinel — not as the failing item's error; the
// partial grid stays finite.
func TestStreamedCancelDuringRetry(t *testing.T) {
	o := goldenObservation(t)
	p := o.Kernels.Params()
	p.GridShards = 1
	p.StreamChunkItems = 32
	k, err := core.NewKernels(p)
	if err != nil {
		t.Fatal(err)
	}
	o.Kernels = k

	ctx, cancel := context.WithCancel(context.Background())
	victim := o.Plan.Items[len(o.Plan.Items)/2]
	ft := FaultConfig{
		Policy:     RetryItems,
		MaxRetries: 3,
		Hook: func(item WorkItem, attempt int) {
			if item.Baseline == victim.Baseline &&
				item.TimeStart == victim.TimeStart &&
				item.Channel0 == victim.Channel0 {
				cancel() // the run is being torn down mid-retry
				panic("fault racing a cancellation")
			}
		},
	}
	g, _, _, err := o.GridAllStreamed(ctx, nil, ft)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not match context.Canceled", err)
	}
	for c := range g.Data {
		for i, v := range g.Data[c] {
			if math.IsNaN(real(v)) || math.IsInf(real(v), 0) ||
				math.IsNaN(imag(v)) || math.IsInf(imag(v), 0) {
				t.Fatalf("canceled run left non-finite value at [%d][%d]", c, i)
			}
		}
	}
}

// TestRetryAndCheckpointMetrics (satellite): pin the new registry
// metrics against a deterministic flaky run — per-item retry counts,
// retry latency samples, checkpoint write/restore counters.
func TestRetryAndCheckpointMetrics(t *testing.T) {
	dir := t.TempDir()
	observer := NewObserver(0)
	o := checkpointGoldenObservation(t, dir, nil, observer)

	sel := faultinject.Selector{Fraction: 0.1, Seed: 42}
	victims := sel.Count(o.Plan.Items)
	if victims == 0 {
		t.Fatal("selector picked no victims; raise the fraction")
	}
	ft := FaultConfig{
		Policy:     RetryItems,
		MaxRetries: 2,
		Hook:       faultinject.FlakyHook(sel, 1), // each victim fails exactly once
	}
	if _, _, rep, err := o.GridAllStreamed(context.Background(), nil, ft); err != nil {
		t.Fatal(err)
	} else if rep.ItemsRetried != victims {
		t.Fatalf("report retried %d items, selector hit %d", rep.ItemsRetried, victims)
	}

	m := observer.Metrics
	if got := m.Counter(obs.MetricItemRetries).Value(); got != int64(victims) {
		t.Errorf("%s = %d, want %d", obs.MetricItemRetries, got, victims)
	}
	// One failed attempt per victim: the attempt counter equals the
	// item counter here, and diverges when items need several retries.
	if got := m.Counter(obs.MetricRetryAttempts).Value(); got != int64(victims) {
		t.Errorf("%s = %d, want %d", obs.MetricRetryAttempts, got, victims)
	}
	h, err := m.Histogram(obs.HistRetryItemSeconds, obs.DurationBuckets)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Count(); got != int64(victims) {
		t.Errorf("%s count = %d, want %d", obs.HistRetryItemSeconds, got, victims)
	}

	wantWrites := (goldenChunks(o) + 1) / 2 // one write per 2-chunk epoch
	if got := m.Counter(obs.MetricCheckpointWrites).Value(); got != int64(wantWrites) {
		t.Errorf("%s = %d, want %d", obs.MetricCheckpointWrites, got, wantWrites)
	}
	if got := m.Counter(obs.MetricCheckpointBytes).Value(); got <= 0 {
		t.Errorf("%s = %d, want > 0", obs.MetricCheckpointBytes, got)
	}
	hw, err := m.Histogram(obs.HistCheckpointWriteSeconds, obs.DurationBuckets)
	if err != nil {
		t.Fatal(err)
	}
	if got := hw.Count(); got != int64(wantWrites) {
		t.Errorf("%s count = %d, want %d", obs.HistCheckpointWriteSeconds, got, wantWrites)
	}
	if got := m.Counter(obs.MetricCheckpointRestores).Value(); got != 0 {
		t.Errorf("%s = %d before any resume", obs.MetricCheckpointRestores, got)
	}

	// Resuming from the finished run's snapshot counts one restore.
	observer2 := NewObserver(0)
	o2 := checkpointGoldenObservation(t, dir, nil, observer2)
	if _, _, _, err := o2.ResumeStreamed(context.Background(), nil, FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	if got := observer2.Metrics.Counter(obs.MetricCheckpointRestores).Value(); got != 1 {
		t.Errorf("%s = %d after resume, want 1", obs.MetricCheckpointRestores, got)
	}
}

// TestConfigValidationTyped (satellite): every streaming/checkpoint
// knob rejects bad values with a *ConfigError wrapping
// ErrInvalidConfig that names the offending field.
func TestConfigValidationTyped(t *testing.T) {
	base := ObservationConfig{
		NrStations:     4,
		NrTimesteps:    8,
		NrChannels:     2,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       128,
		SubgridSize:    16,
	}
	cases := []struct {
		name   string
		mutate func(*ObservationConfig)
		field  string
	}{
		{"negative-shards", func(c *ObservationConfig) { c.GridShards = -1 }, "GridShards"},
		{"shards-exceed-grid", func(c *ObservationConfig) { c.GridShards = 129 }, "GridShards"},
		{"negative-inflight", func(c *ObservationConfig) { c.MaxInflightChunks = -2 }, "MaxInflightChunks"},
		{"negative-checkpoint-every", func(c *ObservationConfig) {
			c.CheckpointDir = "/tmp/x"
			c.CheckpointEvery = -1
		}, "CheckpointEvery"},
		{"checkpoint-every-without-dir", func(c *ObservationConfig) { c.CheckpointEvery = 4 }, "CheckpointEvery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("err = %v, want ErrInvalidConfig", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v is not a *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
	good := base
	good.GridShards = 4
	good.MaxInflightChunks = 2
	if err := good.Validate(); err != nil {
		t.Fatalf("valid streaming config rejected: %v", err)
	}
}
