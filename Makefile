# Build/test entry points. `make ci` is what the robustness gate runs:
# vet, build, the full suite under the race detector, and the chaos
# tests (fault injection + cancellation) raced explicitly.

GO ?= go

.PHONY: all build vet test race chaos ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The chaos tests drive the worker pool through injected panics,
# corrupt visibilities, cancellation and simulated kills at the
# checkpoint protocol's crash points; racing them exercises the
# report/cancel/resume paths under contention.
chaos:
	$(GO) test -race -count=2 ./internal/faultinject/ ./internal/faulttol/
	$(GO) test -race -run 'Facade|Chaos|Cancel|Checkpoint|Resume|Kill' . ./internal/core/ ./internal/checkpoint/

ci: vet build race chaos
