package distrib

import "sync"

import "repro/internal/grid"

// TreeReduce merges the partial grids into gs[0] by a binary reduction
// tree: in round r (stride s = 2^r) every grid at index i with
// i % 2s == 0 absorbs the grid at i+s, so N partials merge in
// ceil(log2 N) rounds with the merges of one round running
// concurrently. The tree's associativity is fixed by index, never by
// arrival order or goroutine scheduling, so a distributed run's final
// grid is a deterministic function of its partials — the property the
// chaos suite leans on when it demands a killed-and-resumed run hash
// identically to a clean one.
//
// Entries may be nil (a worker that contributed nothing); a nil
// absorbs into its partner by pointer swap. The merged grid is
// returned (nil only if every entry was nil). gs is consumed: the
// non-root entries are left in an unspecified state.
func TreeReduce(gs []*grid.Grid) *grid.Grid {
	n := len(gs)
	for stride := 1; stride < n; stride *= 2 {
		var wg sync.WaitGroup
		for i := 0; i+stride < n; i += 2 * stride {
			a, b := i, i+stride
			if gs[b] == nil {
				continue
			}
			if gs[a] == nil {
				gs[a], gs[b] = gs[b], nil
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				gs[a].AddGrid(gs[b])
			}()
		}
		wg.Wait()
	}
	if n == 0 {
		return nil
	}
	return gs[0]
}
