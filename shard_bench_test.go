// Benchmarks for the sharded uv-grid accumulation path: the classic
// row-band adder vs the lock-sharded adder/splitter, the worker
// scaling of the sharded adder, and the full streamed gridding pass.
// scripts/bench.sh includes the kernel-style entries in
// BENCH_kernels.json for the regression gate.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

const (
	benchShardGridSize = 512
	benchShardSgSize   = 32
	benchShardBatch    = 64
)

// benchShardSubgrids builds a deterministic batch of filled subgrids
// scattered over the benchmark grid.
func benchShardSubgrids(seed uint64) []*grid.Subgrid {
	rnd := newTestRand(seed)
	pos := func() int {
		return int((rnd() + 1) / 2 * float64(benchShardGridSize-benchShardSgSize))
	}
	subgrids := make([]*grid.Subgrid, benchShardBatch)
	for i := range subgrids {
		s := grid.NewSubgrid(benchShardSgSize, pos(), pos())
		for c := range s.Data {
			for j := range s.Data[c] {
				s.Data[c][j] = complex(rnd(), rnd())
			}
		}
		subgrids[i] = s
	}
	return subgrids
}

func benchShardKernels(tb testing.TB, workers int) *Kernels {
	tb.Helper()
	k, err := NewKernels(Params{
		GridSize: benchShardGridSize, SubgridSize: benchShardSgSize,
		ImageSize: 0.1, Frequencies: []float64{150e6}, Workers: workers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return k
}

// reportShardPixRate attaches the adder/splitter throughput metric:
// subgrid pixels moved per second across all correlations.
func reportShardPixRate(b *testing.B) {
	pix := float64(b.N) * benchShardBatch * benchShardSgSize * benchShardSgSize * grid.NrCorrelations
	b.ReportMetric(pix/b.Elapsed().Seconds()/1e6, "Mpix/s")
}

// BenchmarkAdderKernel is the classic row-band adder (each worker
// scans every subgrid for its band) on the shared benchmark batch.
func BenchmarkAdderKernel(b *testing.B) {
	k := benchShardKernels(b, 0)
	subgrids := benchShardSubgrids(11)
	g := NewGrid(benchShardGridSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Adder(subgrids, g)
	}
	reportShardPixRate(b)
}

// BenchmarkAdderSharded is the lock-sharded adder at the default shard
// count (one shard per worker) on the same batch.
func BenchmarkAdderSharded(b *testing.B) {
	k := benchShardKernels(b, 0)
	subgrids := benchShardSubgrids(11)
	sh := k.NewShardedGrid(NewGrid(benchShardGridSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.AdderSharded(subgrids, sh)
	}
	reportShardPixRate(b)
}

// BenchmarkAdderShardedScaling sweeps the worker count at a fixed
// 16-shard grid — the tentpole's scaling claim (adder throughput grows
// with cores because workers parallelize over subgrids and only
// contend on shared row bands). On a single-core host the sweep still
// measures the goroutine overhead of the fan-out path.
func BenchmarkAdderShardedScaling(b *testing.B) {
	subgrids := benchShardSubgrids(11)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			k := benchShardKernels(b, w)
			sh := NewShardedGrid(NewGrid(benchShardGridSize), 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.AdderSharded(subgrids, sh)
			}
			reportShardPixRate(b)
		})
	}
}

// BenchmarkSplitterSharded extracts the benchmark batch from a sharded
// grid under the shard locks.
func BenchmarkSplitterSharded(b *testing.B) {
	k := benchShardKernels(b, 0)
	subgrids := benchShardSubgrids(13)
	sh := k.NewShardedGrid(NewGrid(benchShardGridSize))
	k.AdderSharded(subgrids, sh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.SplitterSharded(sh, subgrids)
	}
	reportShardPixRate(b)
}

// BenchmarkStreamedGriddingPass is the streaming companion of
// BenchmarkFullGriddingPass: the same warm observation pumped through
// the chunk scheduler and the sharded adder.
func BenchmarkStreamedGriddingPass(b *testing.B) {
	obs := mustBenchObs(b)
	p := obs.Kernels.Params()
	p.GridShards = 4
	p.StreamChunkItems = 32
	k, err := core.NewKernels(p)
	if err != nil {
		b.Fatal(err)
	}
	g := NewGrid(obs.Config.GridSize)
	sh := k.NewShardedGrid(g)
	// Warm-up pass fills the scratch/subgrid pools.
	if _, _, err := k.GridVisibilitiesStreamed(context.Background(), obs.Plan, obs.Vis, nil, sh, FaultConfig{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var times StageTimes
	for i := 0; i < b.N; i++ {
		g.Zero()
		t, _, err := k.GridVisibilitiesStreamed(context.Background(), obs.Plan, obs.Vis, nil, sh, FaultConfig{})
		if err != nil {
			b.Fatal(err)
		}
		times = t
	}
	st := obs.Plan.Stats()
	b.ReportMetric(float64(st.NrGriddedVisibilities)/times.Total().Seconds()/1e6, "MVis/s")
}

// TestShardedAdderNoAllocs pins the nil-observer hot path: the serial
// sharded adder and splitter must not allocate, like the classic
// kernels (the benchmark baseline records 0 allocs/op; this guards it
// without needing -benchmem).
func TestShardedAdderNoAllocs(t *testing.T) {
	k := benchShardKernels(t, 1)
	subgrids := benchShardSubgrids(17)
	sh := NewShardedGrid(NewGrid(benchShardGridSize), 8)
	if n := testing.AllocsPerRun(10, func() { k.AdderSharded(subgrids, sh) }); n != 0 {
		t.Fatalf("serial sharded adder allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { k.SplitterSharded(sh, subgrids) }); n != 0 {
		t.Fatalf("serial sharded splitter allocates %.1f per run, want 0", n)
	}
}
