package layout

import (
	"math"
	"testing"
)

func TestSKA1LowCounts(t *testing.T) {
	cfg := SKA1LowConfig()
	st := Generate(cfg)
	if len(st) != 150 {
		t.Fatalf("got %d stations, want 150", len(st))
	}
	if NrBaselines(len(st)) != 11175 {
		t.Fatalf("got %d baselines, want 11175 (paper Section VI-A)", NrBaselines(len(st)))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SKA1LowConfig())
	b := Generate(SKA1LowConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("station %d differs between runs", i)
		}
	}
}

func TestCoreStationsInsideCore(t *testing.T) {
	cfg := SKA1LowConfig()
	st := Generate(cfg)
	nCore := int(float64(cfg.NrStations) * cfg.CoreFraction)
	for i := 0; i < nCore; i++ {
		r := math.Hypot(st[i].E, st[i].N)
		if r > cfg.CoreRadius+1e-9 {
			t.Fatalf("core station %d at radius %.1f m > core radius %.1f m", i, r, cfg.CoreRadius)
		}
	}
}

func TestArmStationsSpanRadii(t *testing.T) {
	cfg := SKA1LowConfig()
	st := Generate(cfg)
	nCore := int(float64(cfg.NrStations) * cfg.CoreFraction)
	minR, maxR := math.Inf(1), 0.0
	for _, s := range st[nCore:] {
		r := math.Hypot(s.E, s.N)
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if minR > 2*cfg.CoreRadius {
		t.Fatalf("innermost arm station at %.0f m; arms should start near the core", minR)
	}
	if maxR < 0.8*cfg.MaxRadius {
		t.Fatalf("outermost arm station at %.0f m; arms should reach ~%.0f m", maxR, cfg.MaxRadius)
	}
	if maxR > 1.1*cfg.MaxRadius {
		t.Fatalf("arm station beyond max radius: %.0f m", maxR)
	}
}

func TestUniqueNames(t *testing.T) {
	st := Generate(SKA1LowConfig())
	seen := make(map[string]bool, len(st))
	for _, s := range st {
		if seen[s.Name] {
			t.Fatalf("duplicate station name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestMaxBaselineLength(t *testing.T) {
	cfg := SKA1LowConfig()
	st := Generate(cfg)
	l := MaxBaselineLength(st)
	if l < cfg.MaxRadius || l > 2.2*cfg.MaxRadius {
		t.Fatalf("max baseline %.0f m implausible for %.0f m arms", l, cfg.MaxRadius)
	}
}

func TestLOFARLikeConfig(t *testing.T) {
	st := Generate(LOFARLikeConfig())
	if len(st) != 50 {
		t.Fatalf("got %d stations, want 50", len(st))
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, cfg := range []Config{
		{NrStations: 1, ArmCount: 3},
		{NrStations: 10, ArmCount: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}
