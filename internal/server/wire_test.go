package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// TestFrameRoundTrip: frames survive encode -> decode bit-exactly,
// singly and as a stream.
func TestFrameRoundTrip(t *testing.T) {
	samples := make([]float32, 8*5)
	for i := range samples {
		samples[i] = float32(i) * 0.25
	}
	f, err := EncodeVis(3, 16, samples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, Frame{Type: FrameDone}); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := got.DecodeVis()
	if err != nil {
		t.Fatal(err)
	}
	if c.Baseline != 3 || c.SampleOffset != 16 || len(c.Samples) != len(samples) {
		t.Fatalf("decoded chunk %d/%d/%d floats", c.Baseline, c.SampleOffset, len(c.Samples))
	}
	for i := range samples {
		if c.Samples[i] != samples[i] {
			t.Fatalf("sample %d: %g != %g", i, c.Samples[i], samples[i])
		}
	}
	done, err := ReadFrame(&buf, 0)
	if err != nil || done.Type != FrameDone {
		t.Fatalf("second frame: type %d, err %v", done.Type, err)
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

// TestReadFrameRejections: every corruption class fails with a
// descriptive error, and oversized lengths are rejected before any
// allocation could happen.
func TestReadFrameRejections(t *testing.T) {
	valid := func() []byte {
		f, _ := EncodeVis(0, 0, make([]float32, 8))
		var buf bytes.Buffer
		WriteFrame(&buf, f)
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad magic", append([]byte("NOPE"), valid[4:]...), "bad frame magic"},
		{"bad version", append(append([]byte("IDGF"), 9), valid[5:]...), "unsupported frame version"},
		{"unknown type", append(append([]byte(nil), valid[:5]...), append([]byte{99}, valid[6:]...)...), "unknown frame type"},
		{"truncated header", valid[:6], "reading frame header"},
		{"truncated payload", valid[:frameHeaderSize+10], "reading 44-byte frame payload"},
		{"truncated checksum", valid[:len(valid)-4], "reading frame checksum"},
		{"ragged vis length", func() []byte {
			d := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(d[6:], 13) // not 12 + k*32
			return d
		}(), "not 12 + k*32"},
		{"done with payload", func() []byte {
			var buf bytes.Buffer
			// Hand-build a FrameDone with a length: WriteFrame would not.
			hdr := append([]byte("IDGF"), frameVersion, FrameDone, 4, 0, 0, 0)
			buf.Write(hdr)
			buf.Write([]byte{1, 2, 3, 4})
			return buf.Bytes()
		}(), "FrameDone with 4 payload bytes"},
		{"flipped payload bit", func() []byte {
			d := append([]byte(nil), valid...)
			d[frameHeaderSize] ^= 0x80
			return d
		}(), "checksum mismatch"},
		{"flipped checksum bit", func() []byte {
			d := append([]byte(nil), valid...)
			d[len(d)-1] ^= 0x01
			return d
		}(), "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.data), 0)
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadFrameCapBeforeAllocation: a frame whose declared length
// exceeds the cap is rejected from the 10-byte header alone — the
// reader must not try to read (or allocate) the payload. The
// truncated body proves it: a reader that allocated-and-read would
// fail with an unexpected EOF instead of the cap error.
func TestReadFrameCapBeforeAllocation(t *testing.T) {
	hdr := append([]byte("IDGF"), frameVersion, FrameVis, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(hdr[6:], uint32(visPayloadHeader+1000*VisSampleBytes))
	_, err := ReadFrame(bytes.NewReader(hdr), MinFramePayloadCap)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: %v, want a cap rejection", err)
	}
}

// TestEncodeVisRejections: the encoder refuses malformed chunks
// rather than producing frames the reader would bounce.
func TestEncodeVisRejections(t *testing.T) {
	if _, err := EncodeVis(0, 0, make([]float32, 7)); err == nil {
		t.Fatal("ragged sample count accepted")
	}
	if _, err := EncodeVis(-1, 0, make([]float32, 8)); err == nil {
		t.Fatal("negative baseline accepted")
	}
	if _, err := EncodeVis(0, -1, make([]float32, 8)); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// FuzzReadFrame throws arbitrary bytes at the frame decoder. The
// contract mirrors FuzzReadCheckpoint: never panic, never allocate
// from an unvalidated length (the cap check precedes the payload
// allocation), and anything accepted must decode to a
// structurally-sane frame.
func FuzzReadFrame(f *testing.F) {
	// Seed with genuine frames plus systematic mutations, so the
	// fuzzer starts from deep coverage of the happy path.
	seed := func(fr Frame) []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, fr)
		return buf.Bytes()
	}
	vis, _ := EncodeVis(2, 4, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	valid := seed(vis)
	f.Add(valid)
	f.Add(seed(Frame{Type: FrameDone}))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:frameHeaderSize])
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)
	big := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(big[6:], 1<<31-1)
	f.Add(big)
	f.Add([]byte("IDGF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data), DefaultMaxFramePayload)
		if err != nil {
			return
		}
		switch fr.Type {
		case FrameVis:
			c, err := fr.DecodeVis()
			if err != nil {
				return
			}
			if c.Baseline < 0 || c.SampleOffset < 0 || len(c.Samples)%8 != 0 {
				t.Fatalf("accepted implausible chunk %d/%d/%d", c.Baseline, c.SampleOffset, len(c.Samples))
			}
		case FrameDone:
			if len(fr.Payload) != 0 {
				t.Fatalf("accepted FrameDone with %d payload bytes", len(fr.Payload))
			}
		default:
			t.Fatalf("accepted unknown frame type %d", fr.Type)
		}
	})
}
