package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/report"
)

// Counter is a monotonically increasing int64. All methods are safe
// for concurrent use and are nil-safe: a nil *Counter is a no-op
// instrument, so producers can hold unconditional handles whether or
// not metrics are enabled.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored; counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a concurrently settable float64 (stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive
// upper edge of bucket i, with one implicit overflow bucket above the
// last bound. Observations are lock-free atomic increments; the sum is
// maintained with a CAS loop on the float bits.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DurationBuckets is a decade ladder suited to per-item wall times,
// from a microsecond to ten seconds.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d (%g after %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a concurrency-safe name -> instrument store. Lookups
// get-or-create, so independent producers converge on the same
// instrument; the intended pattern is to resolve instruments once at
// setup time and hit only the atomic instrument methods afterwards.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing buckets
// and ignore bounds). Invalid bounds on first use return an error.
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h != nil {
		return h, nil
	}
	h, err := newHistogram(bounds)
	if err != nil {
		return nil, err
	}
	r.hists[name] = h
	return h, nil
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket edges.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow
	// bucket.
	Counts []int64 `json:"counts"`
	Sum    float64 `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, the unit of export
// (JSON) and rendering. Concurrent writers may race individual reads,
// so a snapshot taken while the pipeline runs is approximate; one
// taken after is exact.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decoding metrics snapshot: %w", err)
	}
	return s, nil
}

// Table renders the snapshot as a sorted name/value table, matching
// the report tables the perf model prints so measured and modeled
// numbers read side by side.
func (s Snapshot) Table() *report.Table {
	t := report.NewTable("metric", "value")
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		t.AddRow(name+"_count", h.Count)
		t.AddRow(name+"_mean", mean)
	}
	return t
}
