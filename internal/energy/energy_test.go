package energy

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/perfmodel"
)

// TestFig15Efficiencies pins the paper's headline energy numbers
// (Section VI-D): PASCAL achieves 32 and 23 GFlops/W for the gridder
// and degridder, FIJI about 13, and HASWELL only about 1.5.
func TestFig15Efficiencies(t *testing.T) {
	d := perfmodel.PaperDataset()
	cases := []struct {
		p         *arch.Platform
		gridder   float64
		degridder float64
		tol       float64
	}{
		{arch.Pascal(), 32, 23, 2.0},
		{arch.Fiji(), 13, 13, 1.5},
		{arch.Haswell(), 1.5, 1.5, 0.3},
	}
	for _, c := range cases {
		g := Efficiency(c.p, perfmodel.GridderCounts(d))
		dg := Efficiency(c.p, perfmodel.DegridderCounts(d))
		if math.Abs(g.GFlopsPerWatt-c.gridder) > c.tol {
			t.Fatalf("%s gridder %.1f GFlops/W, paper reports %.1f", c.p.Name, g.GFlopsPerWatt, c.gridder)
		}
		if math.Abs(dg.GFlopsPerWatt-c.degridder) > c.tol {
			t.Fatalf("%s degridder %.1f GFlops/W, paper reports %.1f", c.p.Name, dg.GFlopsPerWatt, c.degridder)
		}
	}
}

// TestGPUOrderOfMagnitudeLessEnergy: "also in terms of total energy
// consumption, the GPUs outperform the CPU by an order of magnitude.
// This is even true when the power consumption of the host is taken
// into account" (Section VI-D).
func TestGPUOrderOfMagnitudeLessEnergy(t *testing.T) {
	d := perfmodel.PaperDataset()
	cpu, err := Cycle(arch.Haswell(), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*arch.Platform{arch.Fiji(), arch.Pascal()} {
		gpu, err := Cycle(p, d)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := cpu.Total() / gpu.Total(); ratio < 5 {
			t.Fatalf("%s uses only %.1fx less energy than HASWELL including host", p.Name, ratio)
		}
		if gpu.HostJoules <= 0 {
			t.Fatalf("%s host energy missing", p.Name)
		}
	}
}

// TestEnergyDominatedByKernels mirrors Fig. 14: most energy is spent
// in the gridder and degridder.
func TestEnergyDominatedByKernels(t *testing.T) {
	d := perfmodel.PaperDataset()
	for _, p := range arch.Platforms() {
		c, err := Cycle(p, d)
		if err != nil {
			t.Fatal(err)
		}
		frac := (c.Gridder.DeviceJoules + c.Degridder.DeviceJoules) / c.DeviceTotal()
		if frac < 0.9 {
			t.Fatalf("%s: gridder+degridder only %.0f%% of device energy", p.Name, 100*frac)
		}
	}
}

func TestCycleRejectsBadDataset(t *testing.T) {
	if _, err := Cycle(arch.Pascal(), perfmodel.Dataset{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPowerTraceIntegratesToKernelEnergy(t *testing.T) {
	d := perfmodel.PaperDataset()
	p := arch.Pascal()
	const dt = 1e-3
	trace, err := Trace(p, d, dt)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	e := Integrate(trace, dt)
	c, err := Cycle(p, d)
	if err != nil {
		t.Fatal(err)
	}
	// The trace contains the device kernels plus a small idle gap.
	if e < c.DeviceTotal() || e > 1.1*c.DeviceTotal() {
		t.Fatalf("trace energy %.0f J vs kernel energy %.0f J", e, c.DeviceTotal())
	}
	// Samples are monotonically increasing in time.
	for i := 1; i < len(trace); i++ {
		if trace[i].Seconds <= trace[i-1].Seconds {
			t.Fatal("trace not monotone")
		}
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := Trace(arch.Pascal(), perfmodel.PaperDataset(), 0); err == nil {
		t.Fatal("expected error for dt=0")
	}
	if _, err := Trace(arch.Pascal(), perfmodel.Dataset{}, 1e-3); err == nil {
		t.Fatal("expected error for bad dataset")
	}
}

func TestEfficiencyZeroDivGuard(t *testing.T) {
	// A zero-ops kernel (splitter) has zero flops and must report
	// zero efficiency without dividing by zero.
	d := perfmodel.PaperDataset()
	e := Efficiency(arch.Pascal(), perfmodel.SplitterCounts(d))
	if e.GFlopsPerWatt != 0 {
		t.Fatalf("splitter efficiency = %g, want 0", e.GFlopsPerWatt)
	}
	if e.Seconds <= 0 || e.DeviceJoules <= 0 {
		t.Fatal("splitter still consumes time and energy")
	}
}
