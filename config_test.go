package repro

import (
	"math"
	"testing"
)

// TestCoreOnlyLayoutShrinksBaselines: the CoreOnly option must keep
// every station inside the core radius, giving a much wider field of
// view than the arms configuration.
func TestCoreOnlyLayoutShrinksBaselines(t *testing.T) {
	base := smallObservation()
	withArms, err := base.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	core := base
	core.CoreOnly = true
	coreOnly, err := core.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range coreOnly.Stations {
		if r := math.Hypot(s.E, s.N); r > 501 {
			t.Fatalf("core-only station at %.0f m", r)
		}
	}
	if coreOnly.ImageSize < 5*withArms.ImageSize {
		t.Fatalf("core-only field %.4f should be much wider than %.4f",
			coreOnly.ImageSize, withArms.ImageSize)
	}
}

// TestHourAngleIncreasesW: observing far from transit raises the w
// coordinates substantially.
func TestHourAngleIncreasesW(t *testing.T) {
	base := smallObservation()
	transit, err := base.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	low := base
	low.HourAngleStartDeg = -80
	lowElev, err := low.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	wTransit := transit.Simulator.MaxW(base.NrTimesteps)
	wLow := lowElev.Simulator.MaxW(base.NrTimesteps)
	if wLow < 1.5*wTransit {
		t.Fatalf("low elevation w %.0f m not larger than transit %.0f m", wLow, wTransit)
	}
}

// TestBuildTwiceIsDeterministic: two builds of the same configuration
// produce identical plans.
func TestBuildTwiceIsDeterministic(t *testing.T) {
	cfg := smallObservation()
	a, err := cfg.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan.Items) != len(b.Plan.Items) {
		t.Fatal("plans differ in size")
	}
	for i := range a.Plan.Items {
		if a.Plan.Items[i] != b.Plan.Items[i] {
			t.Fatalf("plan item %d differs", i)
		}
	}
}

// TestAllocateVisibilitiesIdempotent: repeated allocation must not
// lose data.
func TestAllocateVisibilitiesIdempotent(t *testing.T) {
	obs, err := smallObservation().Build()
	if err != nil {
		t.Fatal(err)
	}
	obs.Vis.Data[0][0][0] = 42
	obs.AllocateVisibilities()
	if obs.Vis.Data[0][0][0] != 42 {
		t.Fatal("re-allocation clobbered data")
	}
}
