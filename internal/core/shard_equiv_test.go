package core

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/plan"
)

// shardCounts is the equivalence matrix of the issue: one shard (the
// bitwise-deterministic degenerate case), powers of two, a prime that
// does not divide any test grid size, and the machine's core count.
func shardCounts() []int {
	counts := []int{1, 2, 4, 7, runtime.NumCPU()}
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// randomShardSubgrids builds a batch of random uv-domain subgrids
// scattered over a gridSize grid, tagged with W-layers.
func randomShardSubgrids(n, gridSize, sgSize int, seed uint64) []*grid.Subgrid {
	rnd := newTestRand(seed)
	pos := func() int { return int((rnd() + 1) / 2 * float64(gridSize-sgSize)) }
	subgrids := make([]*grid.Subgrid, n)
	for i := range subgrids {
		s := grid.NewSubgrid(sgSize, pos(), pos())
		s.WPlane = i % 3
		for c := range s.Data {
			for j := range s.Data[c] {
				s.Data[c][j] = complex(rnd(), rnd())
			}
		}
		subgrids[i] = s
	}
	return subgrids
}

// relMaxDiff returns the largest per-pixel difference between two
// grids relative to b's peak magnitude.
func relMaxDiff(a, b *grid.Grid) float64 {
	peak := 0.0
	for c := range b.Data {
		for _, v := range b.Data[c] {
			if m := cAbs(v); m > peak {
				peak = m
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	return a.MaxAbsDiff(b) / peak
}

// TestAdderShardedMatchesReference checks the sharded adder against
// the row-band reference Adder across the shard matrix — bit-for-bit
// at one shard (serial in-order accumulation), within 1e-12 relative
// otherwise — on a grid size no shard count in the matrix divides
// evenly.
func TestAdderShardedMatchesReference(t *testing.T) {
	const gridSize, sgSize, batch = 250, 24, 40
	k, err := NewKernels(Params{
		GridSize: gridSize, SubgridSize: sgSize, ImageSize: 0.1,
		Frequencies: []float64{150e6}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	subgrids := randomShardSubgrids(batch, gridSize, sgSize, 101)
	ref := grid.NewGrid(gridSize)
	k.Adder(subgrids, ref)

	for _, shards := range shardCounts() {
		sh := grid.NewSharded(grid.NewGrid(gridSize), shards)
		k.AdderSharded(subgrids, sh)
		got := sh.Master()
		if shards == 1 {
			if d := got.MaxAbsDiff(ref); d != 0 {
				t.Errorf("shards=1: sharded adder differs bitwise from reference (max diff %g)", d)
			}
			continue
		}
		if d := relMaxDiff(got, ref); d > 1e-12 {
			t.Errorf("shards=%d: relative diff %g exceeds 1e-12", shards, d)
		}
	}
}

// TestSplitterShardedMatchesReference: extraction is a pure copy, so
// the sharded splitter must match the reference bitwise at every shard
// count.
func TestSplitterShardedMatchesReference(t *testing.T) {
	const gridSize, sgSize, batch = 250, 24, 30
	k, err := NewKernels(Params{
		GridSize: gridSize, SubgridSize: sgSize, ImageSize: 0.1,
		Frequencies: []float64{150e6}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.NewGrid(gridSize)
	rnd := newTestRand(7)
	for c := range g.Data {
		for i := range g.Data[c] {
			g.Data[c][i] = complex(rnd(), rnd())
		}
	}
	anchors := randomShardSubgrids(batch, gridSize, sgSize, 19)
	ref := make([]*grid.Subgrid, batch)
	for i := range ref {
		ref[i] = grid.NewSubgrid(sgSize, anchors[i].X0, anchors[i].Y0)
	}
	k.Splitter(g, ref)

	for _, shards := range shardCounts() {
		sh := grid.NewSharded(g, shards)
		got := make([]*grid.Subgrid, batch)
		for i := range got {
			got[i] = grid.NewSubgrid(sgSize, anchors[i].X0, anchors[i].Y0)
		}
		k.SplitterSharded(sh, got)
		for i := range got {
			if d := got[i].MaxAbsDiff(ref[i]); d != 0 {
				t.Fatalf("shards=%d: subgrid %d differs from reference splitter by %g", shards, i, d)
			}
		}
	}
}

// TestStreamedGriddingMatchesBatch runs the full streamed pipeline
// (chunk scheduler + sharded adder) against the classic batch pipeline
// over the shard matrix: bit-for-bit with one worker and one shard,
// within 1e-12 relative otherwise — including chunk sizes that split
// the plan mid-group.
func TestStreamedGriddingMatchesBatch(t *testing.T) {
	sc := buildScenario(t, defaultScenarioConfig())
	sc.fillFromModel(nil)
	ref := grid.NewGrid(sc.plan.GridSize)
	if _, err := sc.kernels.GridVisibilities(context.Background(), sc.plan, sc.vs, nil, ref); err != nil {
		t.Fatal(err)
	}

	for _, shards := range shardCounts() {
		for _, chunkItems := range []int{5, 64} {
			params := sc.kernels.Params()
			params.GridShards = shards
			params.StreamChunkItems = chunkItems
			if shards == 1 {
				// Bitwise case: serial dispatch, exact plan order.
				params.Workers = 1
			} else {
				params.Workers = 4
			}
			k, err := NewKernels(params)
			if err != nil {
				t.Fatal(err)
			}
			g := grid.NewGrid(params.GridSize)
			// GridVisibilities auto-dispatches to the streamed path when
			// GridShards is set; this is the exact call sites use.
			if _, err := k.GridVisibilities(context.Background(), sc.plan, sc.vs, nil, g); err != nil {
				t.Fatal(err)
			}
			if shards == 1 {
				if d := g.MaxAbsDiff(ref); d != 0 {
					t.Errorf("shards=1 chunk=%d: streamed grid differs bitwise (max diff %g)", chunkItems, d)
				}
				continue
			}
			if d := relMaxDiff(g, ref); d > 1e-12 {
				t.Errorf("shards=%d chunk=%d: relative diff %g exceeds 1e-12", shards, chunkItems, d)
			}
		}
	}
}

// TestStreamedInflightMemoryBound checks the streaming promise: peak
// simultaneously-alive subgrids never exceed
// min(workers, MaxInflightChunks) x StreamChunkItems.
func TestStreamedInflightMemoryBound(t *testing.T) {
	sc := buildScenario(t, defaultScenarioConfig())
	sc.fillFromModel(nil)
	observer := obs.New(0)
	params := sc.kernels.Params()
	params.GridShards = 4
	params.MaxInflightChunks = 2
	params.StreamChunkItems = 8
	params.Workers = 4
	params.Observer = observer
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.NewGrid(params.GridSize)
	if _, err := k.GridVisibilities(context.Background(), sc.plan, sc.vs, nil, g); err != nil {
		t.Fatal(err)
	}
	peak := PeakInflightSubgrids(observer)
	if peak == 0 {
		t.Fatal("streamed pass recorded no peak in-flight subgrids")
	}
	bound := int64(params.MaxInflightChunks * params.StreamChunkItems)
	if peak > bound {
		t.Fatalf("peak in-flight subgrids %d exceeds MaxInflightChunks x chunk = %d", peak, bound)
	}
	if n := observer.Metrics.Counter(obs.MetricStreamChunks).Value(); n == 0 {
		t.Fatal("no stream chunks counted")
	}
	if locks := observer.Metrics.Counter(obs.MetricShardLocks).Value(); locks == 0 {
		t.Fatal("no shard locks counted")
	}
}

// TestStreamedSkipAndFlag: a kernel panic injected into one work item
// must degrade the streamed pass (skip + flag) instead of failing it,
// exactly like the batch pipeline.
func TestStreamedSkipAndFlag(t *testing.T) {
	sc := buildScenario(t, defaultScenarioConfig())
	sc.fillFromModel(nil)
	params := sc.kernels.Params()
	params.GridShards = 2
	params.StreamChunkItems = 4
	params.Workers = 2
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	victim := sc.plan.Items[len(sc.plan.Items)/2]
	ft := faulttol.Config{
		Policy: faulttol.SkipAndFlag,
		Hook: func(item plan.WorkItem, attempt int) {
			if item.Baseline == victim.Baseline &&
				item.TimeStart == victim.TimeStart &&
				item.Channel0 == victim.Channel0 {
				panic("injected streamed-chunk fault")
			}
		},
	}
	sh := grid.NewSharded(grid.NewGrid(params.GridSize), params.GridShards)
	_, rep, err := k.GridVisibilitiesStreamed(context.Background(), sc.plan, sc.vs, nil, sh, ft)
	if err != nil {
		t.Fatalf("streamed pass failed instead of degrading: %v", err)
	}
	if !rep.Degraded() || rep.ItemsSkipped != 1 {
		t.Fatalf("report = %s, want exactly 1 skipped item", rep)
	}
	if rep.DroppedVisibilities != int64(victim.NrVisibilities()) {
		t.Fatalf("dropped %d visibilities, victim carried %d",
			rep.DroppedVisibilities, victim.NrVisibilities())
	}
	if sh.Master().Norm2() == 0 {
		t.Fatal("degraded streamed pass produced an empty grid")
	}

	// Fail-fast is the other side of the policy: the same fault without
	// SkipAndFlag must surface as an error.
	ft.Policy = faulttol.FailFast
	sh2 := grid.NewSharded(grid.NewGrid(params.GridSize), params.GridShards)
	if _, _, err := k.GridVisibilitiesStreamed(context.Background(), sc.plan, sc.vs, nil, sh2, ft); err == nil {
		t.Fatal("fail-fast streamed pass swallowed the injected fault")
	}
}

// TestShardSpansCarryWPlane drives the sharded adder with a tracer
// attached and W-tagged subgrids: every shard span must carry a valid
// shard index and the W-layer of its subgrid — the stage attribution
// the batch adder never had (satellite fix).
func TestShardSpansCarryWPlane(t *testing.T) {
	const gridSize, sgSize = 128, 16
	observer := obs.New(0)
	k, err := NewKernels(Params{
		GridSize: gridSize, SubgridSize: sgSize, ImageSize: 0.1,
		Frequencies: []float64{150e6}, Workers: 2, Observer: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	subgrids := randomShardSubgrids(12, gridSize, sgSize, 31)
	sh := grid.NewSharded(grid.NewGrid(gridSize), 4)
	k.AdderSharded(subgrids, sh)

	shardSpans := 0
	for _, span := range observer.Tracer.Spans() {
		if span.Stage != obs.StageShard {
			continue
		}
		shardSpans++
		if span.Shard < 0 || span.Shard >= sh.NumShards() {
			t.Fatalf("shard span has shard index %d outside [0,%d)", span.Shard, sh.NumShards())
		}
		if span.WPlane < 0 || span.WPlane > 2 {
			t.Fatalf("shard span carries W-layer %d, want one of the tagged layers 0..2", span.WPlane)
		}
	}
	if shardSpans == 0 {
		t.Fatal("sharded adder recorded no per-shard spans with a tracer attached")
	}
	// Counters must agree with the spans: one span per lock.
	if locks := observer.Metrics.Counter(obs.MetricShardLocks).Value(); locks != int64(shardSpans) {
		t.Fatalf("%d shard-lock counts but %d shard spans", locks, shardSpans)
	}
}

// TestStreamedWStackedPlaneAttribution runs a W-stacked streamed pass
// and checks that adder stage spans inherit each layer's index, so a
// trace can attribute add time per W-layer.
func TestStreamedWStackedPlaneAttribution(t *testing.T) {
	cfg := defaultScenarioConfig()
	cfg.wstep = 40
	sc := buildScenario(t, cfg)
	sc.fillFromModel(nil)
	observer := obs.New(0)
	params := sc.kernels.Params()
	params.GridShards = 2
	params.Workers = 2
	params.Observer = observer
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	planes := WPlanes(sc.plan)
	if len(planes) < 2 {
		t.Skipf("scenario produced %d W-layers, need >= 2", len(planes))
	}
	if _, _, err := k.GridVisibilitiesWStacked(context.Background(), sc.plan, sc.vs, nil); err != nil {
		t.Fatal(err)
	}
	valid := map[int]bool{}
	for _, w := range planes {
		valid[w] = true
	}
	attributed := map[int]bool{}
	for _, span := range observer.Tracer.Spans() {
		if span.Stage != obs.StageAdd && span.Stage != obs.StageShard {
			continue
		}
		if !valid[span.WPlane] {
			t.Fatalf("%s span carries W-layer %d, not one of the plan's layers %v",
				span.Stage, span.WPlane, planes)
		}
		attributed[span.WPlane] = true
	}
	if len(attributed) < 2 {
		t.Fatalf("adder spans attributed to %d W-layers, want >= 2 (layers %v)", len(attributed), planes)
	}
}
