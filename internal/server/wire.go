// Package server is the gridding-as-a-service layer: a long-running
// multi-tenant HTTP server in which clients open observation sessions,
// stream visibility chunks over a length-prefixed binary wire format,
// and fetch the finished grid. It composes the existing layers behind
// a network boundary — the PR 5 streamed scheduler bounds per-session
// memory (MaxInflightChunks), the PR 6 checkpoints make drained
// sessions resumable, and the PR 4 observability layer meters every
// session stage — without importing the facade: the gridding itself is
// injected through the Backend interface, which the root package
// implements on Observation.
package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

// Wire format: a stream of self-delimiting frames, each
//
//	magic "IDGF" | version 1 byte | type 1 byte | payload len uint32 LE
//	payload (len bytes)
//	CRC-64/ECMA over header+payload, uint64 LE
//
// The payload length is validated against the frame type and the
// configured cap before any allocation, mirroring the checkpoint and
// dataio readers: a corrupt or hostile length field is rejected with a
// descriptive error instead of an attempted huge allocation.

const (
	frameMagic   = "IDGF"
	frameVersion = 1
	// frameHeaderSize is magic + version + type + payload length.
	frameHeaderSize = len(frameMagic) + 1 + 1 + 4
)

// Frame types.
const (
	// FrameVis carries visibility samples for one baseline range:
	// payload = baseline uint32 | sample offset uint32 | sample count
	// uint32 | count samples of 8 float32 (4 correlations, re/im
	// interleaved — the dataio visibility encoding).
	FrameVis byte = 1
	// FrameDone marks the end of a visibility stream; its payload is
	// empty. A stream may also end at EOF without one.
	FrameDone byte = 2
)

const (
	// visPayloadHeader is the fixed prefix of a FrameVis payload.
	visPayloadHeader = 12
	// VisSampleBytes is the wire size of one visibility sample
	// (4 correlations x 2 float32 components).
	VisSampleBytes = 32
	// DefaultMaxFramePayload caps a frame payload when the server
	// config does not override it (4 MiB = ~128k samples per frame).
	DefaultMaxFramePayload = 4 << 20
	// MinFramePayloadCap is the smallest useful payload cap: one
	// visibility sample plus the FrameVis prefix.
	MinFramePayloadCap = visPayloadHeader + VisSampleBytes
)

var wireCRCTable = crc64.MakeTable(crc64.ECMA)

// Frame is one decoded wire frame.
type Frame struct {
	Type    byte
	Payload []byte
}

// FrameRule validates the declared payload length of one frame type
// before any allocation happens. Protocols built on the frame layer
// (the session stream here, the distributed reduction stream in
// internal/distrib) each register their own type table; a frame whose
// type has no rule is rejected as unknown.
type FrameRule func(payloadLen int64) error

// sessionRules is the frame-type table of the visibility session
// stream.
var sessionRules = map[byte]FrameRule{
	FrameVis: func(n int64) error {
		if n < visPayloadHeader || (n-visPayloadHeader)%VisSampleBytes != 0 {
			return fmt.Errorf("server: FrameVis payload of %d bytes is not %d + k*%d", n, visPayloadHeader, VisSampleBytes)
		}
		return nil
	},
	FrameDone: func(n int64) error {
		if n != 0 {
			return fmt.Errorf("server: FrameDone with %d payload bytes", n)
		}
		return nil
	},
}

// VisChunk is a decoded FrameVis: a run of samples of one baseline,
// starting at SampleOffset in the baseline's t*nrChannels+c sample
// order. Samples holds 8 float32 per visibility in dataio order.
type VisChunk struct {
	Baseline     int
	SampleOffset int
	Samples      []float32
}

// WriteFrame encodes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	hdr := make([]byte, frameHeaderSize)
	copy(hdr, frameMagic)
	hdr[4] = frameVersion
	hdr[5] = f.Type
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(f.Payload)))
	crc := crc64.New(wireCRCTable)
	crc.Write(hdr)
	crc.Write(f.Payload)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(f.Payload); err != nil {
		return err
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], crc.Sum64())
	_, err := w.Write(sum[:])
	return err
}

// ReadFrame decodes one session-stream frame, enforcing the payload
// cap (<= 0 selects DefaultMaxFramePayload) before allocating. io.EOF
// is returned unwrapped only when the stream ends cleanly between
// frames, so callers can treat it as end-of-stream; a frame cut off
// mid-way is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	return ReadFrameRules(r, maxPayload, sessionRules)
}

// ReadFrameRules decodes one frame whose type must appear in rules;
// the matching rule validates the declared payload length (and the
// cap is enforced) before the payload allocation. It is the shared
// entry point behind ReadFrame and the distributed reduction stream's
// reader.
func ReadFrameRules(r io.Reader, maxPayload int, rules map[byte]FrameRule) (Frame, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	hdr := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // io.EOF: clean end of stream
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("server: reading frame header: %w", err)
	}
	if string(hdr[:4]) != frameMagic {
		return Frame{}, fmt.Errorf("server: bad frame magic %q", hdr[:4])
	}
	if hdr[4] != frameVersion {
		return Frame{}, fmt.Errorf("server: unsupported frame version %d", hdr[4])
	}
	f := Frame{Type: hdr[5]}
	n := int64(binary.LittleEndian.Uint32(hdr[6:]))
	// Type- and cap-check the length before the payload allocation.
	rule, ok := rules[f.Type]
	if !ok {
		return Frame{}, fmt.Errorf("server: unknown frame type %d", f.Type)
	}
	if err := rule(n); err != nil {
		return Frame{}, err
	}
	if n > int64(maxPayload) {
		return Frame{}, fmt.Errorf("server: frame payload of %d bytes exceeds the %d-byte cap", n, maxPayload)
	}
	crc := crc64.New(wireCRCTable)
	crc.Write(hdr)
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, fmt.Errorf("server: reading %d-byte frame payload: %w", n, err)
		}
		crc.Write(f.Payload)
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("server: reading frame checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != crc.Sum64() {
		return Frame{}, fmt.Errorf("server: frame checksum mismatch: wire %016x, computed %016x", got, crc.Sum64())
	}
	return f, nil
}

// EncodeVis builds a FrameVis for one run of samples; len(samples)
// must be a multiple of 8 (one visibility = 8 float32).
func EncodeVis(baseline, sampleOffset int, samples []float32) (Frame, error) {
	if len(samples)%8 != 0 {
		return Frame{}, fmt.Errorf("server: %d floats is not a whole number of visibilities", len(samples))
	}
	if baseline < 0 || sampleOffset < 0 {
		return Frame{}, fmt.Errorf("server: negative baseline %d or offset %d", baseline, sampleOffset)
	}
	count := len(samples) / 8
	p := make([]byte, visPayloadHeader+count*VisSampleBytes)
	binary.LittleEndian.PutUint32(p[0:], uint32(baseline))
	binary.LittleEndian.PutUint32(p[4:], uint32(sampleOffset))
	binary.LittleEndian.PutUint32(p[8:], uint32(count))
	for i, s := range samples {
		binary.LittleEndian.PutUint32(p[visPayloadHeader+4*i:], math.Float32bits(s))
	}
	return Frame{Type: FrameVis, Payload: p}, nil
}

// DecodeVis decodes a FrameVis payload, cross-checking the embedded
// sample count against the payload length.
func (f Frame) DecodeVis() (VisChunk, error) {
	if f.Type != FrameVis {
		return VisChunk{}, fmt.Errorf("server: decoding frame type %d as FrameVis", f.Type)
	}
	if len(f.Payload) < visPayloadHeader {
		return VisChunk{}, fmt.Errorf("server: FrameVis payload of %d bytes is shorter than its %d-byte prefix", len(f.Payload), visPayloadHeader)
	}
	c := VisChunk{
		Baseline:     int(binary.LittleEndian.Uint32(f.Payload[0:])),
		SampleOffset: int(binary.LittleEndian.Uint32(f.Payload[4:])),
	}
	count := int(binary.LittleEndian.Uint32(f.Payload[8:]))
	if got := (len(f.Payload) - visPayloadHeader) / VisSampleBytes; count != got || (len(f.Payload)-visPayloadHeader)%VisSampleBytes != 0 {
		return VisChunk{}, fmt.Errorf("server: FrameVis declares %d samples but carries %d bytes of data", count, len(f.Payload)-visPayloadHeader)
	}
	c.Samples = make([]float32, count*8)
	for i := range c.Samples {
		c.Samples[i] = math.Float32frombits(binary.LittleEndian.Uint32(f.Payload[visPayloadHeader+4*i:]))
	}
	return c, nil
}
