package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one completed trace event: a pipeline stage, one work item
// inside a stage, or one pixel tile inside an item. Times are
// nanoseconds relative to the tracer's epoch, so traces are
// self-contained and replayable.
type Span struct {
	Stage Stage `json:"stage"`
	// Worker is the worker index that ran the span; -1 for spans of
	// the whole stage (no single worker).
	Worker int `json:"worker"`
	// Group is the work-group index within the pass (the W-plane index
	// for StageWPlane, the major-cycle index for StageCycle); -1 when
	// not applicable.
	Group int `json:"group"`
	// Item is the work-item index within the group; -1 for
	// stage-level spans.
	Item int `json:"item"`
	// Tile is the pixel-tile index within the item; -1 except for
	// StageTile spans.
	Tile int `json:"tile"`
	// Baseline is the plan baseline of an item span; -1 otherwise.
	Baseline int `json:"baseline"`
	// Shard is the grid-shard index of a StageShard span (one locked
	// row band of the sharded adder/splitter); -1 otherwise.
	Shard int `json:"shard"`
	// WPlane is the W-layer index the span's data belongs to, so
	// W-stacked passes attribute adder/splitter work to layers the same
	// way tile spans carry tile ids; -1 when unknown or mixed.
	WPlane int `json:"wplane"`
	// Start is the span begin time in nanoseconds since the tracer
	// epoch; Dur is its length in nanoseconds.
	Start int64 `json:"start_ns"`
	Dur   int64 `json:"dur_ns"`
}

// DefaultMaxSpans bounds the tracer buffer when the caller does not:
// at 88 bytes per span this caps tracer memory near 23 MB, enough for
// every item of a paper-scale pass with tiles to spare.
const DefaultMaxSpans = 1 << 18

// Tracer records completed spans into a bounded in-memory buffer.
// Record is safe for concurrent use and nil-safe; once the buffer is
// full further spans are counted as dropped rather than grown, so a
// forgotten tracer can never consume unbounded memory.
type Tracer struct {
	epoch time.Time
	max   int

	mu      sync.Mutex
	spans   []Span
	dropped int64
}

// NewTracer returns a tracer bounded to maxSpans spans (<= 0 selects
// DefaultMaxSpans). The epoch is the creation time: Span.Start values
// count from here.
func NewTracer(maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{epoch: time.Now(), max: maxSpans}
}

// Offset converts an absolute time into epoch-relative nanoseconds
// for Span.Start.
func (t *Tracer) Offset(tm time.Time) int64 {
	if t == nil {
		return 0
	}
	return tm.Sub(t.epoch).Nanoseconds()
}

// Record appends a completed span (dropped silently once the buffer
// is full; see Dropped).
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Len returns the number of buffered spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded because the buffer
// was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the buffered spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Trace is the exported form of a tracer: the epoch as absolute time
// plus every buffered span. This is what WriteJSON emits and ReadJSON
// decodes.
type Trace struct {
	// EpochUnixNs anchors the relative span times in absolute time.
	EpochUnixNs int64 `json:"epoch_unix_ns"`
	// Dropped counts spans lost to the buffer bound.
	Dropped int64  `json:"dropped,omitempty"`
	Spans   []Span `json:"spans"`
}

// Trace snapshots the tracer into its exportable form.
func (t *Tracer) Trace() Trace {
	if t == nil {
		return Trace{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Trace{
		EpochUnixNs: t.epoch.UnixNano(),
		Dropped:     t.dropped,
		Spans:       append([]Span(nil), t.spans...),
	}
}

// WriteJSON writes the trace in the native JSON format (decodable by
// ReadJSON).
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Trace())
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return Trace{}, fmt.Errorf("obs: decoding trace: %w", err)
	}
	for i, s := range tr.Spans {
		if s.Dur < 0 {
			return Trace{}, fmt.Errorf("obs: span %d has negative duration %d", i, s.Dur)
		}
	}
	return tr, nil
}

// chromeEvent is one entry of the chrome://tracing JSON array format
// ("X" complete events plus "M" metadata; timestamps in microseconds).
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name     string `json:"name,omitempty"`
	Group    int    `json:"group,omitempty"`
	Item     int    `json:"item,omitempty"`
	Tile     int    `json:"tile,omitempty"`
	Baseline int    `json:"baseline,omitempty"`
	Shard    int    `json:"shard,omitempty"`
	WPlane   int    `json:"wplane,omitempty"`
}

// WriteChromeTrace writes the spans as a chrome://tracing-compatible
// event stream ({"traceEvents": [...]}): load the file in
// chrome://tracing or https://ui.perfetto.dev to see the pipeline
// timeline per worker. Stage-level spans (worker -1) land on lane 0
// ("pipeline"); worker w lands on lane w+1.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	tr := t.Trace()
	events := make([]chromeEvent, 0, len(tr.Spans)+2)
	lanes := map[int]bool{}
	for _, s := range tr.Spans {
		tid := s.Worker + 1
		lanes[tid] = true
		ev := chromeEvent{
			Name: string(s.Stage),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  1,
			Tid:  tid,
		}
		if s.Item >= 0 || s.Tile >= 0 || s.Group >= 0 || s.Shard >= 0 || s.WPlane >= 0 {
			ev.Args = &chromeArgs{Group: s.Group, Item: s.Item, Tile: s.Tile,
				Baseline: s.Baseline, Shard: s.Shard, WPlane: s.WPlane}
		}
		events = append(events, ev)
	}
	for tid := range lanes {
		name := fmt.Sprintf("worker %d", tid-1)
		if tid == 0 {
			name = "pipeline"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: &chromeArgs{Name: name},
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
