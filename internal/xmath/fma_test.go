package xmath

import "testing"

func TestHasFastFMAStable(t *testing.T) {
	// The probe is cached: repeated calls must agree (kernel dispatch
	// relies on the answer being a constant of the process).
	a, b := HasFastFMA(), HasFastFMA()
	if a != b {
		t.Fatal("HasFastFMA changed between calls")
	}
	if HasAVX2FMA() && !a {
		// CPUID says the hardware fuses; the timing probe must agree.
		t.Fatal("AVX2+FMA hardware but HasFastFMA is false")
	}
}

func TestFloat32AccumBound(t *testing.T) {
	if got := Float32AccumBound(0, 1); got != 8*Eps32 {
		t.Fatalf("n=0 bound = %g", got)
	}
	// Monotone in both n and sumAbs, linear in sumAbs.
	if Float32AccumBound(100, 1) <= Float32AccumBound(10, 1) {
		t.Fatal("bound not monotone in n")
	}
	if got, want := Float32AccumBound(10, 6), 3*Float32AccumBound(10, 2); got != want {
		t.Fatalf("bound not linear in sumAbs: %g vs %g", got, want)
	}
	// Sanity scale: 1000 unit terms stay well below one part in a
	// thousand of the sum's magnitude budget.
	if b := Float32AccumBound(1000, 1000); b > 1 {
		t.Fatalf("bound implausibly loose: %g", b)
	}
}

func TestFloat32PhasorDriftBound(t *testing.T) {
	if got := Float32PhasorDriftBound(0); got != 0 {
		t.Fatalf("k=0 drift = %g", got)
	}
	if got, want := Float32PhasorDriftBound(DefaultPhasorResync), float64(DefaultPhasorResync)*6*Eps32; got != want {
		t.Fatalf("drift bound = %g, want %g", got, want)
	}
	// The float32 drift must dominate the float64 one at equal k.
	if Float32PhasorDriftBound(64) <= PhasorDriftBound(64) {
		t.Fatal("float32 drift bound should exceed the float64 bound")
	}
}
