package core

import (
	"math"

	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// DegridSubgrid executes Algorithm 2 of the paper for one work item:
// given the image-domain subgrid (as produced by the splitter plus the
// inverse subgrid FFT), it applies the taper and the A-terms and then
// predicts the item's visibilities with the conjugate phasor of the
// gridder. Results are stored into vis[t*item.NrChannels + c].
//
// The input subgrid is not modified.
func (k *Kernels) DegridSubgrid(item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2) {
	s := k.getScratch()
	k.degridSubgridScratch(item, in, uvw, atermP, atermQ, vis, s, k.params.workers())
	k.putScratch(s)
}

// degridSubgridScratch is DegridSubgrid with caller-owned scratch
// buffers and an explicit pixel-tile parallelism hint (see
// gridSubgridScratch).
func (k *Kernels) degridSubgridScratch(item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2, s *scratch, par int) {
	k.checkItem(item, uvw, vis)
	if k.params.DisableBatching {
		if k.ob.enabled() {
			k.ob.kernelPath(k.ob.pathRef)
		}
		k.degridSubgridReference(item, in, uvw, atermP, atermQ, vis)
		return
	}
	if k.params.Precision == Float32 {
		tile := degridTile[float32]
		vec := k.disp.degridVec32 != nil
		if vec {
			tile = k.disp.degridVec32
		}
		if k.ob.enabled() {
			if vec {
				k.ob.kernelPath(k.ob.pathVec32)
			} else {
				k.ob.kernelPath(k.ob.pathTiled32)
			}
		}
		degridSubgridTiled(k, item, in, uvw, atermP, atermQ, vis, s, par, tile)
	} else {
		tile := degridTile[float64]
		vec := k.disp.degridVec64 != nil
		if vec {
			tile = k.disp.degridVec64
		}
		if k.ob.enabled() {
			if vec {
				k.ob.kernelPath(k.ob.pathVec)
			} else {
				k.ob.kernelPath(k.ob.pathTiled64)
			}
		}
		degridSubgridTiled(k, item, in, uvw, atermP, atermQ, vis, s, par, tile)
	}
}

// correctedPixel applies the forward A-terms (Ap * S * Aq^H) and the
// taper to pixel i of the input subgrid.
func (k *Kernels) correctedPixel(in *grid.Subgrid, i int, atermP, atermQ []xmath.Matrix2) xmath.Matrix2 {
	s := xmath.Matrix2{in.Data[0][i], in.Data[1][i], in.Data[2][i], in.Data[3][i]}
	if atermP != nil {
		s = atermP[i].Mul(s).Mul(atermQ[i].Hermitian())
	}
	tp := complex(k.taper[i], 0)
	return xmath.Matrix2{s[0] * tp, s[1] * tp, s[2] * tp, s[3] * tp}
}

// degridSubgridReference is the direct transcription of Algorithm 2.
func (k *Kernels) degridSubgridReference(item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2) {
	sg := k.params.SubgridSize
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	for j := range vis {
		vis[j] = xmath.Matrix2{}
	}
	for t := 0; t < item.NrTimesteps; t++ {
		c3 := uvw[t]
		for c := 0; c < item.NrChannels; c++ {
			scale := k.scale[item.Channel0+c]
			var sum xmath.Matrix2
			for i := 0; i < sg*sg; i++ {
				l, m, n := k.l[i], k.m[i], k.n[i]
				phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
				phaseIndex := c3.U*l + c3.V*m + c3.W*n
				// alpha = -(phase used by the gridder): conjugate.
				sin, cos := k.sincos(phaseIndex*scale - phaseOffset)
				phi := complex(cos, -sin)
				s := k.correctedPixel(in, i, atermP, atermQ)
				sum[0] += phi * s[0]
				sum[1] += phi * s[1]
				sum[2] += phi * s[2]
				sum[3] += phi * s[3]
			}
			vis[t*item.NrChannels+c] = sum
		}
	}
}

// degridSubgridTiled implements the optimized strategy of
// Section V-B-b with pixel tiling layered on top: the corrected pixels
// are precomputed once into planar real/imaginary arrays of the kernel
// precision ("vectorization over pixels"), the per-pixel phase offsets
// are hoisted, and the pixel loop is split into row tiles (runTiles).
// Each tile produces a partial visibility sum over its own pixels;
// partials are then combined in tile order, so the full sum performs
// the identical addition sequence whether tiles ran serially or
// concurrently — the result is bitwise reproducible for a fixed tile
// size (changing the tile size reassociates the pixel sum within the
// documented rounding bound).
//
// On uniformly spaced channels each pixel's phasor advances from
// channel to channel by a fixed per-pixel delta phasor (the phase is
// affine in the channel index), so the per-channel sincos sweep over
// the pixels collapses to two evaluations per (pixel, time step) plus
// one complex rotation per (pixel, channel), re-synchronized exactly
// every xmath.DefaultPhasorResync channels.
func degridSubgridTiled[F floatT](k *Kernels, item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2, s *scratch, par int, tile degridTileFn[F]) {
	sg := k.params.SubgridSize
	npix := sg * sg
	nt, nc := item.NrTimesteps, item.NrChannels

	// Apply taper and A-terms once; split planes (the degridder's
	// analogue of the gridder's transposition step). The planar block
	// and phase-offset table are shared read-only by all tiles.
	b := bufsOf[F](s)
	backing := grow(&b.planar, 8*npix)
	var pre, pim [4][]F
	for p := 0; p < 4; p++ {
		pre[p] = backing[(2*p)*npix : (2*p+1)*npix]
		pim[p] = backing[(2*p+1)*npix : (2*p+2)*npix]
	}
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	pOff := growF(&s.pOff, npix)
	for i := 0; i < npix; i++ {
		px := k.correctedPixel(in, i, atermP, atermQ)
		pre[0][i], pim[0][i] = F(real(px[0])), F(imag(px[0]))
		pre[1][i], pim[1][i] = F(real(px[1])), F(imag(px[1]))
		pre[2][i], pim[2][i] = F(real(px[2])), F(imag(px[2]))
		pre[3][i], pim[3][i] = F(real(px[3])), F(imag(px[3]))
		pOff[i] = twoPi * (uOff*k.l[i] + vOff*k.m[i] + wOff*k.n[i])
	}

	vsum := grow(&b.vsum, 8*nt*nc)
	tr := k.tileRows(sg)
	ntiles := (sg + tr - 1) / tr
	if par > ntiles {
		par = ntiles
	}
	if par <= 1 {
		// Serial: tiles accumulate straight into vsum in tile order,
		// called directly (no closure; see gridSubgridTiled).
		for i := range vsum {
			vsum[i] = 0
		}
		for r0 := 0; r0 < sg; r0 += tr {
			r1 := r0 + tr
			if r1 > sg {
				r1 = sg
			}
			tile(k, item, s, uvw, s, r0, r1, vsum)
		}
	} else {
		// Parallel: each tile owns a zeroed partial slab; combining the
		// partials in tile order afterwards performs the exact addition
		// sequence of the serial path, element by element.
		partial := grow(&b.partial, 8*nt*nc*ntiles)
		for i := range partial {
			partial[i] = 0
		}
		k.runTiles(s, par, sg, func(ts *scratch, row0, row1 int) {
			seg := partial[8*nt*nc*(row0/tr) : 8*nt*nc*(row0/tr+1)]
			tile(k, item, s, uvw, ts, row0, row1, seg)
		})
		for i := range vsum {
			vsum[i] = 0
		}
		for tile := 0; tile < ntiles; tile++ {
			seg := partial[8*nt*nc*tile : 8*nt*nc*(tile+1)]
			for i := range vsum {
				vsum[i] += seg[i]
			}
		}
	}
	for j := 0; j < nt*nc; j++ {
		a := vsum[8*j:]
		vis[j] = xmath.Matrix2{
			complex(float64(a[0]), float64(a[1])), complex(float64(a[2]), float64(a[3])),
			complex(float64(a[4]), float64(a[5])), complex(float64(a[6]), float64(a[7])),
		}
	}
}

// degridTileFn is the per-tile degridder kernel: the generic
// degridTile, or the hand-vectorized degridTileVec on float64/amd64.
// Both read the shared corrected-pixel planes and phase offsets out of
// the item-owner scratch sb (re-derived locally, as in gridTileFn) and
// accumulate the tile's pixel contributions into dst.
type degridTileFn[F floatT] func(k *Kernels, item plan.WorkItem, sb *scratch, uvw []uvwsim.UVW, ts *scratch, row0, row1 int, dst []F)

// degridTile predicts the contribution of pixel rows [row0, row1) to
// every visibility of the work item, accumulating into dst (8 floats
// per visibility, indexed 8*(t*nc+c)). Per (time step, channel) it runs
// two passes over the tile's pixels: a phasor pass (seed, rotate, or
// exact re-sync) and a conjugate accumulation pass, the latter fused on
// hardware FMA.
func degridTile[F floatT](k *Kernels, item plan.WorkItem, sb *scratch, uvw []uvwsim.UVW, ts *scratch, row0, row1 int, dst []F) {
	sg := k.params.SubgridSize
	nc := item.NrChannels
	i0, i1 := row0*sg, row1*sg
	n := i1 - i0
	tb := bufsOf[F](ts)
	pIdx := growF(&ts.pIdx, n)
	phRe := grow(&tb.phRe, n)
	phIm := grow(&tb.phIm, n)
	useRec := k.useRecurrence(nc)
	var dRe, dIm []F
	if useRec {
		dRe = grow(&tb.dRe, n)
		dIm = grow(&tb.dIm, n)
	}
	l, m, nn := k.l[i0:i1], k.m[i0:i1], k.n[i0:i1]
	pre, pim := visPlanes[F](sb, sg*sg)
	off := sb.pOff[i0:i1]
	var tpre, tpim [4][]F
	for p := 0; p < 4; p++ {
		tpre[p] = pre[p][i0:i1]
		tpim[p] = pim[p][i0:i1]
	}
	scale0 := k.scale[item.Channel0]
	for t := 0; t < item.NrTimesteps; t++ {
		c3 := uvw[t]
		for i := 0; i < n; i++ {
			pIdx[i] = c3.U*l[i] + c3.V*m[i] + c3.W*nn[i]
		}
		if useRec {
			// Seed the per-pixel phasors at channel 0 and the delta
			// phasors exp(i*pIdx*dscale) that advance them per channel.
			// Phase arguments and sincos stay float64 in both precisions.
			for i := 0; i < n; i++ {
				sv, cv := k.sincos(pIdx[i]*scale0 - off[i])
				phIm[i], phRe[i] = F(sv), F(cv)
				sv, cv = k.sincos(pIdx[i] * k.dscale)
				dIm[i], dRe[i] = F(sv), F(cv)
			}
		}
		for c := 0; c < nc; c++ {
			scale := k.scale[item.Channel0+c]
			switch {
			case !useRec:
				for i := 0; i < n; i++ {
					sv, cv := k.sincos(pIdx[i]*scale - off[i])
					phIm[i], phRe[i] = F(sv), F(cv)
				}
			case c == 0:
				// Seeded above.
			case c%xmath.DefaultPhasorResync == 0:
				// Exact re-sync bounds the rotation drift.
				for i := 0; i < n; i++ {
					sv, cv := k.sincos(pIdx[i]*scale - off[i])
					phIm[i], phRe[i] = F(sv), F(cv)
				}
			default:
				for i := 0; i < n; i++ {
					s, co := phIm[i], phRe[i]
					phIm[i] = s*dRe[i] + co*dIm[i]
					phRe[i] = co*dRe[i] - s*dIm[i]
				}
			}
			out := (*[8]F)(dst[8*(t*nc+c):])
			conjAccumulate(out, phRe, phIm, &tpre, &tpim, k.fastFMA)
		}
	}
}

// conjAccumulate adds sum_i conj(phasor_i) * pixel_i over the tile's
// pixels into out, one component pair per correlation.
func conjAccumulate[F floatT](out *[8]F, phRe, phIm []F, pre, pim *[4][]F, fastFMA bool) {
	if fastFMA {
		if o, ok := any(out).(*[8]float64); ok {
			conjAccumulateFMA(o, any(phRe).([]float64), any(phIm).([]float64),
				any(pre).(*[4][]float64), any(pim).(*[4][]float64))
			return
		}
	}
	var s0r, s0i, s1r, s1i, s2r, s2i, s3r, s3i F
	r0, i0v := pre[0], pim[0]
	r1, i1v := pre[1], pim[1]
	r2, i2v := pre[2], pim[2]
	r3, i3v := pre[3], pim[3]
	for i := range phRe {
		cr, ci := phRe[i], -phIm[i] // conjugate phasor
		vr, vi := r0[i], i0v[i]
		s0r += vr*cr - vi*ci
		s0i += vr*ci + vi*cr
		vr, vi = r1[i], i1v[i]
		s1r += vr*cr - vi*ci
		s1i += vr*ci + vi*cr
		vr, vi = r2[i], i2v[i]
		s2r += vr*cr - vi*ci
		s2i += vr*ci + vi*cr
		vr, vi = r3[i], i3v[i]
		s3r += vr*cr - vi*ci
		s3i += vr*ci + vi*cr
	}
	out[0] += s0r
	out[1] += s0i
	out[2] += s1r
	out[3] += s1i
	out[4] += s2r
	out[5] += s2i
	out[6] += s3r
	out[7] += s3i
}

// conjAccumulateFMA is the float64 specialization of conjAccumulate on
// hardware fused multiply-add (see rotateAccumulateFMA; the fused and
// unfused variants differ only in rounding).
func conjAccumulateFMA(out *[8]float64, phRe, phIm []float64, pre, pim *[4][]float64) {
	var s0r, s0i, s1r, s1i, s2r, s2i, s3r, s3i float64
	r0, i0v := pre[0], pim[0]
	r1, i1v := pre[1], pim[1]
	r2, i2v := pre[2], pim[2]
	r3, i3v := pre[3], pim[3]
	for i := range phRe {
		cr, ci := phRe[i], -phIm[i] // conjugate phasor
		vr, vi := r0[i], i0v[i]
		s0r = math.FMA(vr, cr, math.FMA(-vi, ci, s0r))
		s0i = math.FMA(vr, ci, math.FMA(vi, cr, s0i))
		vr, vi = r1[i], i1v[i]
		s1r = math.FMA(vr, cr, math.FMA(-vi, ci, s1r))
		s1i = math.FMA(vr, ci, math.FMA(vi, cr, s1i))
		vr, vi = r2[i], i2v[i]
		s2r = math.FMA(vr, cr, math.FMA(-vi, ci, s2r))
		s2i = math.FMA(vr, ci, math.FMA(vi, cr, s2i))
		vr, vi = r3[i], i3v[i]
		s3r = math.FMA(vr, cr, math.FMA(-vi, ci, s3r))
		s3i = math.FMA(vr, ci, math.FMA(vi, cr, s3i))
	}
	out[0] += s0r
	out[1] += s0i
	out[2] += s1r
	out[3] += s1i
	out[4] += s2r
	out[5] += s2i
	out[6] += s3r
	out[7] += s3i
}
