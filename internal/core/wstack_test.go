package core

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/sky"
	"repro/internal/taper"
	"repro/internal/uvwsim"
)

// highWScenario fabricates an observation whose baselines carry large
// w coordinates (hundreds of wavelengths), where plain IDG with a
// small subgrid loses accuracy and W-stacking must restore it.
func highWScenario(tb testing.TB, wstep float64) (*plan.Plan, *Kernels, *VisibilitySet, sky.Model) {
	tb.Helper()
	const (
		gridSize  = 128
		sgSize    = 16
		imageSize = 0.25
		freq      = 150e6
		nt        = 16
		nb        = 10
	)
	lambda := uvwsim.SpeedOfLight / freq

	rnd := newTestRand(99)
	tracks := make([][]uvwsim.UVW, nb)
	baselines := make([]uvwsim.Baseline, nb)
	for b := 0; b < nb; b++ {
		baselines[b] = uvwsim.Baseline{P: 0, Q: b + 1}
		tracks[b] = make([]uvwsim.UVW, nt)
		// Slowly drifting uv at +/- 120 wavelengths, w ramping from
		// 400 to 1000 wavelengths.
		u0, v0 := 120*rnd(), 120*rnd()
		w0 := 400 + 600*(rnd()+1)/2
		for t := 0; t < nt; t++ {
			tracks[b][t] = uvwsim.UVW{
				U: (u0 + 0.05*float64(t)) * lambda,
				V: (v0 - 0.03*float64(t)) * lambda,
				W: (w0 + 0.1*float64(t)) * lambda,
			}
		}
	}

	cfg := plan.Config{
		GridSize:      gridSize,
		SubgridSize:   sgSize,
		ImageSize:     imageSize,
		Frequencies:   []float64{freq},
		KernelSupport: 4,
		WStepLambda:   wstep,
	}
	p, err := plan.New(cfg, tracks)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := p.ValidateCoverage(tracks); err != nil {
		tb.Fatal(err)
	}
	k, err := NewKernels(Params{
		GridSize:    gridSize,
		SubgridSize: sgSize,
		ImageSize:   imageSize,
		Frequencies: []float64{freq},
	})
	if err != nil {
		tb.Fatal(err)
	}
	vs := MustNewVisibilitySet(baselines, tracks, 1)
	pix := imageSize / gridSize
	model := sky.Model{{L: 18 * pix, M: -10 * pix, I: 1}}
	return p, k, vs, model
}

// degridError predicts the model through the given pipeline and
// returns the max relative error vs the taper-weighted measurement
// equation.
func degridError(tb testing.TB, p *plan.Plan, k *Kernels, vs *VisibilitySet, model sky.Model, stacked bool) float64 {
	tb.Helper()
	img := model.Rasterize(p.GridSize, p.ImageSize)
	var err error
	if stacked {
		_, err = k.DegridVisibilitiesWStacked(context.Background(), p, vs, nil, img)
	} else {
		g := ImageToGrid(img, 0)
		_, err = k.DegridVisibilities(context.Background(), p, vs, nil, g)
	}
	if err != nil {
		tb.Fatal(err)
	}
	half := p.ImageSize / 2
	src := model[0]
	taperFlux := src.I * sphAt(src.L/half) * sphAt(src.M/half)
	var maxErr float64
	for b := range vs.Data {
		for t := 0; t < vs.NrTimesteps; t++ {
			sc := vs.UVW[b][t].Scale(p.Frequencies[0])
			want := (sky.Model{{L: src.L, M: src.M, I: taperFlux}}).Predict(sc.U, sc.V, sc.W)
			got := vs.Data[b][t]
			if d := got.MaxAbsDiff(want) / taperFlux; d > maxErr {
				maxErr = d
			}
		}
	}
	return maxErr
}

func TestWStackingRestoresAccuracy(t *testing.T) {
	// Plain IDG (single w=0 plane) on high-w data.
	pPlain, k, vs, model := highWScenario(t, 0)
	plainErr := degridError(t, pPlain, k, vs, model, false)

	// W-stacked IDG with 100-wavelength layers on the same data.
	pStack, k2, vs2, model2 := highWScenario(t, 100)
	stackErr := degridError(t, pStack, k2, vs2, model2, true)

	t.Logf("degrid max rel err: plain %.3e, w-stacked %.3e", plainErr, stackErr)
	if plainErr < 5*stackErr {
		t.Fatalf("w-stacking should improve accuracy substantially: plain %.3e vs stacked %.3e",
			plainErr, stackErr)
	}
	if stackErr > 2e-2 {
		t.Fatalf("stacked error %.3e still too large", stackErr)
	}
}

func TestWStackedGriddingRecoversSource(t *testing.T) {
	p, k, vs, model := highWScenario(t, 100)
	// Fill with exact model predictions.
	for b := range vs.Data {
		for tt := 0; tt < vs.NrTimesteps; tt++ {
			sc := vs.UVW[b][tt].Scale(p.Frequencies[0])
			vs.Data[b][tt] = model.Predict(sc.U, sc.V, sc.W)
		}
	}
	grids, _, err := k.GridVisibilitiesWStacked(context.Background(), p, vs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) < 2 {
		t.Fatalf("expected multiple w-planes, got %d", len(grids))
	}
	img := k.CombineWStackedImage(grids, p.WStepLambda)
	st := p.Stats()
	ScaleImage(img, float64(p.GridSize*p.GridSize)/float64(st.NrGriddedVisibilities))
	ApplyTaperCorrection(img, k.TaperCorrection(p.GridSize))
	x, y, peak := peakStokesI(img)
	wantX, wantY := sky.LMToPixel(model[0].L, model[0].M, p.GridSize, p.ImageSize)
	if x != wantX || y != wantY {
		t.Fatalf("peak at (%d,%d), want (%d,%d)", x, y, wantX, wantY)
	}
	if peak < 0.9 || peak > 1.1 {
		t.Fatalf("peak %.3f, want ~1", peak)
	}
}

func TestWStackRejectsPlainPlan(t *testing.T) {
	p, k, vs, _ := highWScenario(t, 0)
	if _, _, err := k.GridVisibilitiesWStacked(context.Background(), p, vs, nil); err == nil {
		t.Fatal("expected error for plan without w-layers")
	}
	img := grid.NewGrid(p.GridSize)
	if _, err := k.DegridVisibilitiesWStacked(context.Background(), p, vs, nil, img); err == nil {
		t.Fatal("expected error for plan without w-layers")
	}
}

func TestWPlanesSorted(t *testing.T) {
	p, _, _, _ := highWScenario(t, 100)
	planes := WPlanes(p)
	for i := 1; i < len(planes); i++ {
		if planes[i] <= planes[i-1] {
			t.Fatal("planes not strictly sorted")
		}
	}
}

// sphAt mirrors the scenario taper (prolate spheroidal).
func sphAt(nu float64) float64 {
	return taper.Spheroidal(nu)
}
