//go:build amd64

#include "textflag.h"

// The hand-vectorized inner loops of the gridder and degridder
// (see simd_amd64.go for the contract and vector layout). All three
// routines are leaf functions: NOSPLIT, no calls, VZEROUPPER before
// returning to Go code.

// func rotAccQuads(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float64, nq int, ph *float64)
//
// Gridder channel loop, four channels per iteration. acc points at a
// [32]float64 block: eight accumulators x four lanes, accumulator k's
// lanes at acc[4k:4k+4]. ph points at [10]float64: per-lane phasor
// sin at ph[0:4], cos at ph[4:8], and the four-channel step rotator
// sin/cos at ph[8], ph[9]. The phasor register state is NOT written
// back: callers re-seed per resync chunk.
TEXT ·rotAccQuads(SB), NOSPLIT, $0-88
	MOVQ acc+0(FP), AX
	MOVQ r0+8(FP), SI
	MOVQ i0+16(FP), DI
	MOVQ r1+24(FP), R8
	MOVQ i1+32(FP), R9
	MOVQ r2+40(FP), R10
	MOVQ i2+48(FP), R11
	MOVQ r3+56(FP), R12
	MOVQ i3+64(FP), R13
	MOVQ nq+72(FP), DX
	MOVQ ph+80(FP), BX

	VMOVUPD      (BX), Y0       // ps lanes
	VMOVUPD      32(BX), Y1     // pc lanes
	VBROADCASTSD 64(BX), Y2     // sin(4*delta)
	VBROADCASTSD 72(BX), Y3     // cos(4*delta)

	VMOVUPD (AX), Y4
	VMOVUPD 32(AX), Y5
	VMOVUPD 64(AX), Y6
	VMOVUPD 96(AX), Y7
	VMOVUPD 128(AX), Y8
	VMOVUPD 160(AX), Y9
	VMOVUPD 192(AX), Y10
	VMOVUPD 224(AX), Y11

quadloop:
	VMOVUPD      (SI), Y12      // vr, correlation 0
	VMOVUPD      (DI), Y13      // vi
	VFMADD231PD  Y1, Y12, Y4    // a0 += vr*pc
	VFNMADD231PD Y0, Y13, Y4    // a0 -= vi*ps
	VFMADD231PD  Y0, Y12, Y5    // a1 += vr*ps
	VFMADD231PD  Y1, Y13, Y5    // a1 += vi*pc
	VMOVUPD      (R8), Y12
	VMOVUPD      (R9), Y13
	VFMADD231PD  Y1, Y12, Y6
	VFNMADD231PD Y0, Y13, Y6
	VFMADD231PD  Y0, Y12, Y7
	VFMADD231PD  Y1, Y13, Y7
	VMOVUPD      (R10), Y12
	VMOVUPD      (R11), Y13
	VFMADD231PD  Y1, Y12, Y8
	VFNMADD231PD Y0, Y13, Y8
	VFMADD231PD  Y0, Y12, Y9
	VFMADD231PD  Y1, Y13, Y9
	VMOVUPD      (R12), Y12
	VMOVUPD      (R13), Y13
	VFMADD231PD  Y1, Y12, Y10
	VFNMADD231PD Y0, Y13, Y10
	VFMADD231PD  Y0, Y12, Y11
	VFMADD231PD  Y1, Y13, Y11

	// Advance the phasor lanes by four channels:
	// ps' = ps*dc4 + pc*ds4, pc' = pc*dc4 - ps*ds4.
	VMULPD       Y3, Y0, Y14
	VMULPD       Y3, Y1, Y15
	VFMADD231PD  Y2, Y1, Y14
	VFNMADD231PD Y2, Y0, Y15
	VMOVAPD      Y14, Y0
	VMOVAPD      Y15, Y1

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ DX
	JNZ  quadloop

	VMOVUPD Y4, (AX)
	VMOVUPD Y5, 32(AX)
	VMOVUPD Y6, 64(AX)
	VMOVUPD Y7, 96(AX)
	VMOVUPD Y8, 128(AX)
	VMOVUPD Y9, 160(AX)
	VMOVUPD Y10, 192(AX)
	VMOVUPD Y11, 224(AX)
	VZEROUPPER
	RET

// func conjAccQuads(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float64, nq int)
//
// Degridder pixel loop, four pixels per iteration: accumulates
// sum_i conj(phasor_i) * pixel_i over 4*nq pixels into the eight
// scalars at out (re/im per correlation). Vector partial sums reduce
// lane 0+1+2+3 on exit and ADD into out.
TEXT ·conjAccQuads(SB), NOSPLIT, $0-96
	MOVQ out+0(FP), AX
	MOVQ phRe+8(FP), BX
	MOVQ phIm+16(FP), CX
	MOVQ p0r+24(FP), SI
	MOVQ p0i+32(FP), DI
	MOVQ p1r+40(FP), R8
	MOVQ p1i+48(FP), R9
	MOVQ p2r+56(FP), R10
	MOVQ p2i+64(FP), R11
	MOVQ p3r+72(FP), R12
	MOVQ p3i+80(FP), R13
	MOVQ nq+88(FP), DX

	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

pixloop:
	VMOVUPD (BX), Y0            // cr = phRe
	VMOVUPD (CX), Y1            // -ci = phIm (conjugate phasor)
	VMOVUPD      (SI), Y12      // vr, correlation 0
	VMOVUPD      (DI), Y13      // vi
	VFMADD231PD  Y0, Y12, Y4    // s_re += vr*cr
	VFMADD231PD  Y1, Y13, Y4    // s_re += vi*phIm  (= -vi*ci)
	VFNMADD231PD Y1, Y12, Y5    // s_im -= vr*phIm  (= +vr*ci)
	VFMADD231PD  Y0, Y13, Y5    // s_im += vi*cr
	VMOVUPD      (R8), Y12
	VMOVUPD      (R9), Y13
	VFMADD231PD  Y0, Y12, Y6
	VFMADD231PD  Y1, Y13, Y6
	VFNMADD231PD Y1, Y12, Y7
	VFMADD231PD  Y0, Y13, Y7
	VMOVUPD      (R10), Y12
	VMOVUPD      (R11), Y13
	VFMADD231PD  Y0, Y12, Y8
	VFMADD231PD  Y1, Y13, Y8
	VFNMADD231PD Y1, Y12, Y9
	VFMADD231PD  Y0, Y13, Y9
	VMOVUPD      (R12), Y12
	VMOVUPD      (R13), Y13
	VFMADD231PD  Y0, Y12, Y10
	VFMADD231PD  Y1, Y13, Y10
	VFNMADD231PD Y1, Y12, Y11
	VFMADD231PD  Y0, Y13, Y11

	ADDQ $32, BX
	ADDQ $32, CX
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ DX
	JNZ  pixloop

	// Reduce each accumulator's lanes as (l0+l2)+(l1+l3) and add into
	// out[k]. VEXTRACTF128 folds the upper half onto the lower; HADDPD
	// sums the remaining pair.
	VEXTRACTF128 $1, Y4, X12
	VADDPD       X12, X4, X4
	VHADDPD      X4, X4, X4
	VEXTRACTF128 $1, Y5, X12
	VADDPD       X12, X5, X5
	VHADDPD      X5, X5, X5
	VEXTRACTF128 $1, Y6, X12
	VADDPD       X12, X6, X6
	VHADDPD      X6, X6, X6
	VEXTRACTF128 $1, Y7, X12
	VADDPD       X12, X7, X7
	VHADDPD      X7, X7, X7
	VEXTRACTF128 $1, Y8, X12
	VADDPD       X12, X8, X8
	VHADDPD      X8, X8, X8
	VEXTRACTF128 $1, Y9, X12
	VADDPD       X12, X9, X9
	VHADDPD      X9, X9, X9
	VEXTRACTF128 $1, Y10, X12
	VADDPD       X12, X10, X10
	VHADDPD      X10, X10, X10
	VEXTRACTF128 $1, Y11, X12
	VADDPD       X12, X11, X11
	VHADDPD      X11, X11, X11

	VADDSD (AX), X4, X4
	VMOVSD X4, (AX)
	VADDSD 8(AX), X5, X5
	VMOVSD X5, 8(AX)
	VADDSD 16(AX), X6, X6
	VMOVSD X6, 16(AX)
	VADDSD 24(AX), X7, X7
	VMOVSD X7, 24(AX)
	VADDSD 32(AX), X8, X8
	VMOVSD X8, 32(AX)
	VADDSD 40(AX), X9, X9
	VMOVSD X9, 40(AX)
	VADDSD 48(AX), X10, X10
	VMOVSD X10, 48(AX)
	VADDSD 56(AX), X11, X11
	VMOVSD X11, 56(AX)
	VZEROUPPER
	RET

// func rotQuads(phRe, phIm, dRe, dIm *float64, nq int)
//
// Degridder phasor rotation pass, four pixels per iteration:
// phIm' = phIm*dRe + phRe*dIm, phRe' = phRe*dRe - phIm*dIm.
TEXT ·rotQuads(SB), NOSPLIT, $0-40
	MOVQ phRe+0(FP), AX
	MOVQ phIm+8(FP), BX
	MOVQ dRe+16(FP), CX
	MOVQ dIm+24(FP), SI
	MOVQ nq+32(FP), DX

rotloop:
	VMOVUPD      (AX), Y0       // co
	VMOVUPD      (BX), Y1       // s
	VMOVUPD      (CX), Y2       // dRe
	VMOVUPD      (SI), Y3       // dIm
	VMULPD       Y2, Y1, Y4     // s*dRe
	VFMADD231PD  Y3, Y0, Y4     // += co*dIm -> phIm'
	VMULPD       Y2, Y0, Y5     // co*dRe
	VFNMADD231PD Y3, Y1, Y5     // -= s*dIm -> phRe'
	VMOVUPD      Y4, (BX)
	VMOVUPD      Y5, (AX)
	ADDQ         $32, AX
	ADDQ         $32, BX
	ADDQ         $32, CX
	ADDQ         $32, SI
	DECQ         DX
	JNZ          rotloop
	VZEROUPPER
	RET
