package grid

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// fillDistinct gives every (correlation, pixel) a unique value,
// including a few awkward float64 bit patterns that must survive the
// round trip exactly.
func fillDistinct(g *Grid) {
	for c := range g.Data {
		for i := range g.Data[c] {
			g.Data[c][i] = complex(float64(c)*1e6+float64(i)+0.125, -float64(i)*0.25)
		}
	}
	g.Data[0][0] = complex(math.Copysign(0, -1), math.SmallestNonzeroFloat64)
	g.Data[1][1] = complex(math.MaxFloat64, -math.MaxFloat64)
}

func TestBandRoundTrip(t *testing.T) {
	const n = 12
	for _, shards := range []int{1, 3, n} {
		src := NewGrid(n)
		fillDistinct(src)
		srcSh := NewSharded(src, shards)

		dst := NewGrid(n)
		dstSh := NewSharded(dst, shards)

		for i := 0; i < srcSh.NumShards(); i++ {
			var buf bytes.Buffer
			if err := srcSh.WriteBand(&buf, i); err != nil {
				t.Fatal(err)
			}
			if buf.Len() != srcSh.BandBytes(i) {
				t.Fatalf("shards=%d band %d: wrote %d bytes, BandBytes says %d",
					shards, i, buf.Len(), srcSh.BandBytes(i))
			}
			if err := dstSh.ReadBand(&buf, i); err != nil {
				t.Fatal(err)
			}
		}
		for c := range src.Data {
			for i := range src.Data[c] {
				want, got := src.Data[c][i], dst.Data[c][i]
				// Compare bit patterns: -0 vs +0 and NaN payloads must
				// survive, not just numeric equality.
				if math.Float64bits(real(want)) != math.Float64bits(real(got)) ||
					math.Float64bits(imag(want)) != math.Float64bits(imag(got)) {
					t.Fatalf("shards=%d: value [%d][%d] = %v, want %v", shards, c, i, got, want)
				}
			}
		}
	}
}

func TestBandBytesSumCoversGrid(t *testing.T) {
	const n = 10
	sh := NewSharded(NewGrid(n), 3)
	total := 0
	for i := 0; i < sh.NumShards(); i++ {
		total += sh.BandBytes(i)
	}
	if want := NrCorrelations * n * n * 16; total != want {
		t.Fatalf("bands cover %d bytes, grid is %d", total, want)
	}
}

func TestReadBandShortInput(t *testing.T) {
	sh := NewSharded(NewGrid(8), 2)
	full := &bytes.Buffer{}
	if err := sh.WriteBand(full, 0); err != nil {
		t.Fatal(err)
	}
	short := bytes.NewReader(full.Bytes()[:full.Len()/2])
	err := NewSharded(NewGrid(8), 2).ReadBand(short, 0)
	if err == nil {
		t.Fatal("short read accepted")
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read error %v does not wrap EOF", err)
	}
}
