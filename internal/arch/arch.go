// Package arch describes the three hardware platforms of the paper's
// evaluation (Table I) and models their instruction-mix behaviour: the
// throughput of mixed FMA / sine-cosine workloads (Fig. 12), which is
// the property that separates the platforms. Haswell evaluates
// sine/cosine in software (SVML), Fiji on the regular ALUs at reduced
// rate, and Pascal on dedicated special function units (SFUs) that
// overlap with the FMA pipeline.
//
// Since this reproduction runs on commodity hardware rather than the
// DAS-5 cluster, the per-platform performance constants are taken from
// Table I and the calibration constants (sincos slot costs, kernel
// power draws) are fitted to the results the paper reports; the
// perfmodel and energy packages then *derive* every figure from these
// constants plus exact operation counts. EXPERIMENTS.md documents the
// calibration.
package arch

import "fmt"

// SincosImpl describes where a platform evaluates sine/cosine pairs.
type SincosImpl int

const (
	// SincosSoftwareALU evaluates sincos on the FMA ALUs (Haswell via
	// SVML, Fiji via the native instruction set at reduced rate).
	SincosSoftwareALU SincosImpl = iota
	// SincosHardwareSFU evaluates sincos on special function units
	// that run concurrently with the FMA pipeline (Pascal).
	SincosHardwareSFU
)

// Platform is one row of Table I plus the calibrated model constants.
type Platform struct {
	Name         string // short name used in the figures
	Model        string // full product name
	Type         string // "CPU" or "GPU"
	Architecture string

	// Core configuration (Table I): #ICs x #compute units x FPU
	// instructions/cycle x vector size = #FPUs.
	ClockGHz        float64
	NrICs           int
	NrComputeUnits  int
	FPUInstrPerCyc  int
	VectorSize      int
	PeakTFlops      float64 // single precision, FMA-counted
	MemGB           float64
	MemBandwidthGBs float64
	TDPWatts        float64

	// GPU-only properties.
	SharedBandwidthGBs float64 // software-managed cache bandwidth
	PCIeGBs            float64 // host link bandwidth

	// Sine/cosine model (Section VI-C).
	Sincos SincosImpl
	// SincosSlots is the number of FMA-issue slots one sincos-pair
	// evaluation consumes on the ALU path (per SIMD lane group).
	SincosSlots float64
	// SFUSlots is the SFU-queue occupancy of one sincos pair, in
	// FMA-slot units (hardware path only).
	SFUSlots float64
	// SFUIssueSlots is the FMA-issue overhead of dispatching one
	// sincos pair to the SFUs.
	SFUIssueSlots float64

	// Energy model: measured power draw while running the IDG kernels
	// (device only for GPUs; package+DRAM for the CPU), plus the host
	// contribution for GPU platforms (Fig. 14 includes the host).
	KernelPowerWatts float64
	HostPowerWatts   float64
}

// NrFPUs returns the FPU count of the core configuration column.
func (p *Platform) NrFPUs() int {
	return p.NrICs * p.NrComputeUnits * p.FPUInstrPerCyc * p.VectorSize
}

// PeakOpsPerSec returns the peak throughput in the paper's "ops"
// (+, -, *, sin, cos): attained only with pure FMA streams, where one
// FMA counts as two ops.
func (p *Platform) PeakOpsPerSec() float64 {
	return p.PeakTFlops * 1e12
}

// Haswell returns the dual-socket Intel Xeon E5-2697v3 system
// (HASWELL in the paper).
func Haswell() *Platform {
	return &Platform{
		Name: "HASWELL", Model: "Intel Xeon E5-2697v3", Type: "CPU",
		Architecture: "Haswell-EP",
		ClockGHz:     2.60, // turbo-rated peak is used for PeakTFlops
		NrICs:        2, NrComputeUnits: 14, FPUInstrPerCyc: 2, VectorSize: 8,
		PeakTFlops: 2.78, MemGB: 256, MemBandwidthGBs: 136, TDPWatts: 290,
		Sincos: SincosSoftwareALU,
		// SVML medium accuracy: ~36 cycles per 8-lane sincos pair; the
		// core dual-issues FMAs, so that is 72 FMA-issue slots.
		SincosSlots: 72,
		// LIKWID package+DRAM power under the IDG kernel load.
		KernelPowerWatts: 350,
	}
}

// Fiji returns the AMD R9 Fury X system (FIJI).
func Fiji() *Platform {
	return &Platform{
		Name: "FIJI", Model: "AMD R9 Fury X", Type: "GPU",
		Architecture: "Fiji",
		ClockGHz:     1.05,
		NrICs:        1, NrComputeUnits: 64, FPUInstrPerCyc: 1, VectorSize: 64,
		PeakTFlops: 8.60, MemGB: 4, MemBandwidthGBs: 512, TDPWatts: 275,
		SharedBandwidthGBs: 4300, // LDS: 64 B/cycle/CU x 64 CUs x 1.05 GHz
		PCIeGBs:            12,
		Sincos:             SincosSoftwareALU,
		// sin and cos each run at a quarter of the FMA rate on the
		// ALUs, plus software range reduction.
		SincosSlots:      20,
		KernelPowerWatts: 305, HostPowerWatts: 80,
	}
}

// Pascal returns the NVIDIA GTX 1080 system (PASCAL).
func Pascal() *Platform {
	return &Platform{
		Name: "PASCAL", Model: "NVIDIA GTX 1080", Type: "GPU",
		Architecture: "Pascal",
		ClockGHz:     1.80,
		NrICs:        1, NrComputeUnits: 40, FPUInstrPerCyc: 2, VectorSize: 32,
		PeakTFlops: 9.22, MemGB: 8, MemBandwidthGBs: 320, TDPWatts: 180,
		SharedBandwidthGBs: 4430, // 128 B/cycle/SM x 20 SMs x 1.73 GHz
		PCIeGBs:            12,
		Sincos:             SincosHardwareSFU,
		SFUSlots:           8, // SFU rate = 1/4 FMA rate, two ops per pair
		SFUIssueSlots:      2, // MUFU dispatch + range scaling issue cost
		KernelPowerWatts:   200, HostPowerWatts: 80,
	}
}

// HostLike returns a model of the commodity x86-64 machine this
// reproduction runs on, for rooflining the measured Go kernels against
// the same model that produces Fig. 10: cores CPU cores at a nominal
// 2.7 GHz, dual FMA issue, 4-lane (256-bit double) vectors — the shape
// the hand-vectorized kernels in internal/core target. It is NOT part
// of Platforms(): the paper's figures stay exactly the three Table I
// systems.
//
// The sincos constant is calibrated to xmath.SincosFast (~86 cycles
// per scalar pair, ~172 dual-issue slots). Note the measured kernels
// can exceed this roofline: the phasor-rotation recurrence amortizes
// one sincos over up to 64 channels, raising the effective FMA/sincos
// ratio far beyond the rho = 17 the model assumes for the paper's
// kernels.
func HostLike(cores int) *Platform {
	if cores < 1 {
		cores = 1
	}
	return &Platform{
		Name: "HOST", Model: "generic x86-64 host", Type: "CPU",
		Architecture: "amd64",
		ClockGHz:     2.7,
		NrICs:        1, NrComputeUnits: cores, FPUInstrPerCyc: 2, VectorSize: 4,
		// FMA-counted double-precision peak of the configuration above.
		PeakTFlops: float64(cores) * 2.7e9 * 2 * 4 * 2 / 1e12,
		MemGB:      8, MemBandwidthGBs: 20, TDPWatts: 95,
		Sincos:           SincosSoftwareALU,
		SincosSlots:      172,
		KernelPowerWatts: 65,
	}
}

// Platforms returns the three systems of Table I in the paper's order.
func Platforms() []*Platform {
	return []*Platform{Haswell(), Fiji(), Pascal()}
}

// ByName looks a platform up by its short name.
func ByName(name string) (*Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("arch: unknown platform %q", name)
}

// MixFraction returns the fraction of PeakOpsPerSec attained by a
// workload mixing rho FMA operations per sincos-pair evaluation
// (Fig. 12). The paper's kernels have rho = 17 (Algorithms 1 and 2).
//
// ALU path: one unit of work (rho FMAs + 1 sincos) occupies
// rho + SincosSlots issue slots and produces 2*rho + 2 ops, so the
// fraction relative to 2 ops/slot peak is (rho+1) / (rho+SincosSlots).
//
// SFU path: the sincos occupies the SFU queue for SFUSlots while the
// FMAs continue to issue; the unit takes max(rho + SFUIssueSlots,
// SFUSlots) slots.
func (p *Platform) MixFraction(rho float64) float64 {
	if rho < 0 {
		panic(fmt.Sprintf("arch: negative rho %g", rho))
	}
	ops := 2*rho + 2
	var slots float64
	switch p.Sincos {
	case SincosHardwareSFU:
		slots = rho + p.SFUIssueSlots
		if p.SFUSlots > slots {
			slots = p.SFUSlots
		}
	default:
		slots = rho + p.SincosSlots
	}
	f := ops / (2 * slots)
	if f > 1 {
		f = 1
	}
	return f
}

// MixOpsPerSec returns the attainable ops/s for the given mix.
func (p *Platform) MixOpsPerSec(rho float64) float64 {
	return p.MixFraction(rho) * p.PeakOpsPerSec()
}

// KernelRho is the FMA/sincos ratio of the gridder and degridder
// kernels: 17 real FMAs per sincos-pair evaluation (Algorithm 1).
const KernelRho = 17
