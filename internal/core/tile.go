package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// The tiled kernels split each subgrid's pixel loop into tiles of
// tileRows subgrid rows (the paper's GPU mapping parallelizes pixels
// within a thread block the same way). Tiles are the intra-item work
// units: when a pipeline pass has fewer work items than workers,
// runItems raises the per-item parallelism hint and runTiles fans the
// tiles of one subgrid out across otherwise-idle workers. Tile
// decomposition depends only on the kernel parameters — never on the
// hint or on scheduling — so results are reproducible run to run.

// runTiles executes fn(ts, row0, row1) for every pixel tile of a
// rows-row subgrid, fanning the tiles out over up to par goroutines
// (including the calling one). Each invocation gets a scratch arena it
// owns for the duration of the call: the caller's own s, or one checked
// out of the kernel pool for the extra workers. fn must confine writes
// to that scratch and to its tile's disjoint output range. A panic
// inside fn is re-raised on the calling goroutine after all tiles
// settle, preserving the per-item panic isolation of the pipeline
// (faulttol.Run wraps the caller).
func (k *Kernels) runTiles(s *scratch, par, rows int, fn func(ts *scratch, row0, row1 int)) {
	tr := k.tileRows(rows)
	ntiles := (rows + tr - 1) / tr
	if par > ntiles {
		par = ntiles
	}
	if par <= 1 {
		for t := 0; t < ntiles; t++ {
			r0 := t * tr
			r1 := r0 + tr
			if r1 > rows {
				r1 = rows
			}
			fn(s, r0, r1)
		}
		return
	}

	var (
		next     int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[tilePanic]
	)
	// Tile spans give the trace its intra-item attribution: wid is the
	// fan-out-local worker index (0 = the item owner). Only the traced
	// parallel path pays for the timestamps.
	trace := k.ob.enabled() && k.ob.tracer != nil
	worker := func(wid int, ts *scratch) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &tilePanic{val: r})
			}
		}()
		for {
			t := int(atomic.AddInt64(&next, 1)) - 1
			if t >= ntiles {
				return
			}
			r0 := t * tr
			r1 := r0 + tr
			if r1 > rows {
				r1 = rows
			}
			if trace {
				t0 := time.Now()
				fn(ts, r0, r1)
				k.ob.tileDone(wid, t, t0)
			} else {
				fn(ts, r0, r1)
			}
		}
	}
	wg.Add(par)
	extra := make([]*scratch, par-1)
	for w := range extra {
		extra[w] = k.getScratch()
		go worker(w+1, extra[w])
	}
	worker(0, s)
	wg.Wait()
	for _, es := range extra {
		k.putScratch(es)
	}
	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
}

// tilePanic carries the first panic value out of a tile worker.
type tilePanic struct{ val any }
