// Package repro is a Go reproduction of "Image-Domain Gridding on
// Graphics Processors" (Veenboer, Petschow, Romein; IPDPS 2017). It
// implements the IDG algorithm — gridder and degridder kernels,
// subgrid FFTs, adder and splitter, execution planning, tapering,
// A-term (direction-dependent effect) correction and W-stacking —
// together with a W-projection baseline, a synthetic SKA1-low
// observation generator, a CLEAN-based imaging cycle, and the
// performance/energy models that regenerate the paper's evaluation
// (Table I and Figures 8-16). See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-vs-measured record.
//
// The package itself is a facade: it re-exports the main API from the
// internal packages and provides the Observation builder that wires a
// full synthetic observation together.
package repro

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/aterm"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/plan"
	"repro/internal/sky"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// Re-exported core types; see the internal packages for full
// documentation.
type (
	// Params configures the IDG kernels (grid and subgrid geometry,
	// frequencies, taper, sincos evaluator, worker count).
	Params = core.Params
	// Kernels bundles the precomputed IDG kernel state.
	Kernels = core.Kernels
	// VisibilitySet holds an observation's uvw tracks and 2x2
	// correlation visibilities.
	VisibilitySet = core.VisibilitySet
	// StageTimes records wall-clock time per pipeline stage.
	StageTimes = core.StageTimes
	// Grid is the uv-grid (4 correlation planes).
	Grid = grid.Grid
	// Subgrid is one N~ x N~ tile.
	Subgrid = grid.Subgrid
	// Plan is the execution plan (work items).
	Plan = plan.Plan
	// PlanConfig configures the execution planner.
	PlanConfig = plan.Config
	// WorkItem is one subgrid plus its visibility block.
	WorkItem = plan.WorkItem
	// Baseline is an ordered station pair.
	Baseline = uvwsim.Baseline
	// UVW is a baseline coordinate in meters.
	UVW = uvwsim.UVW
	// Matrix2 is a 2x2 complex matrix (Jones / brightness).
	Matrix2 = xmath.Matrix2
	// PointSource is a point source with Stokes fluxes.
	PointSource = sky.PointSource
	// SkyModel is a collection of point sources.
	SkyModel = sky.Model
	// ATermProvider evaluates direction-dependent station responses.
	ATermProvider = aterm.Provider
	// Station is a station position in local ENU meters.
	Station = layout.Station
	// Precision selects the kernel compute precision (Params.Precision).
	Precision = core.Precision
)

// Kernel compute precisions. Float64 is the default; Float32 halves
// the arithmetic width and memory traffic of the hot loops at the cost
// of the error bound documented in DESIGN.md (phase arguments stay
// float64 in both modes).
const (
	Float64 = core.Float64
	Float32 = core.Float32
)

// NewKernels precomputes the IDG kernel state for the parameters.
func NewKernels(p Params) (*Kernels, error) { return core.NewKernels(p) }

// NewGrid allocates a zeroed n x n grid.
func NewGrid(n int) *Grid { return grid.NewGrid(n) }

// NewPlan builds an execution plan from per-baseline uvw tracks.
func NewPlan(cfg PlanConfig, tracks [][]UVW) (*Plan, error) { return plan.New(cfg, tracks) }

// GridToImage converts a uv grid into a sky image (centered inverse
// FFT per correlation).
func GridToImage(g *Grid, workers int) *Grid { return core.GridToImage(g, workers) }

// ImageToGrid converts a sky image into a uv grid.
func ImageToGrid(img *Grid, workers int) *Grid { return core.ImageToGrid(img, workers) }

// ObservationConfig describes a synthetic SKA1-low-like observation.
// The zero value is not valid; start from DefaultObservation or
// PaperObservation.
type ObservationConfig struct {
	// NrStations, NrTimesteps and NrChannels set the observation
	// dimensions (paper: 150, 8192, 16).
	NrStations  int
	NrTimesteps int
	NrChannels  int
	// StartFrequency and ChannelWidth define the subband in Hz.
	StartFrequency float64
	ChannelWidth   float64
	// GridSize, SubgridSize and KernelSupport set the imaging
	// geometry (paper: 2048, 24, and the taper margin).
	GridSize      int
	SubgridSize   int
	KernelSupport int
	// GridMargin keeps the outermost baselines this many pixels away
	// from the grid edge when deriving the image size.
	GridMargin int
	// ATermInterval is the A-term update interval in time steps
	// (paper: 256).
	ATermInterval int
	// MaxTimestepsPerSubgrid is T~max (0: unlimited).
	MaxTimestepsPerSubgrid int
	// WStepLambda enables W-stacking when positive.
	WStepLambda float64
	// CoreOnly restricts the layout to the dense station core (no
	// spiral arms), which yields short baselines and therefore a wide
	// field of view — the regime where w terms matter.
	CoreOnly bool
	// HourAngleStartDeg overrides the observation start hour angle
	// when non-zero; observing far from transit increases the w
	// coordinates.
	HourAngleStartDeg float64
	// Workers bounds parallelism (0: GOMAXPROCS).
	Workers int
	// Precision selects the kernel compute precision (default Float64;
	// see Params.Precision).
	Precision Precision
	// GridShards splits the uv-grid into independently locked row
	// bands and routes gridding through the sharded streaming
	// scheduler; 0 keeps the classic batch pipeline (see
	// Params.GridShards).
	GridShards int
	// MaxInflightChunks bounds the streaming scheduler's in-flight
	// chunks — and with it peak subgrid memory (see
	// Params.MaxInflightChunks).
	MaxInflightChunks int
	// CheckpointDir, when non-empty, makes streamed gridding passes
	// write durable snapshots into this directory and enables
	// Observation.ResumeStreamed; setting it routes gridding through
	// the streaming scheduler (see Params.CheckpointDir).
	CheckpointDir string
	// CheckpointEvery is the checkpoint period in streamed chunks
	// (0 with a CheckpointDir: a default period; setting it without
	// CheckpointDir fails validation).
	CheckpointEvery int
	// Observer receives pipeline metrics and trace spans (see
	// Params.Observer); nil disables observation.
	Observer *Observer
}

// DefaultObservation returns a laptop-scale observation that keeps the
// paper's geometry ratios (24-pixel subgrids on a grid ~85x the
// subgrid, 16 channels, A-term updates) at ~1/1000 the visibility
// count.
func DefaultObservation() ObservationConfig {
	return ObservationConfig{
		NrStations:     30,
		NrTimesteps:    256,
		NrChannels:     16,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       1024,
		SubgridSize:    24,
		KernelSupport:  6,
		GridMargin:     48,
		ATermInterval:  64,
	}
}

// PaperObservation returns the full benchmark of Section VI-A:
// 150 stations, 8192 x 1 s, 16 channels, 24x24 subgrids on a
// 2048x2048 grid, A-terms every 256 steps. Building its plan takes
// seconds; allocating its visibilities takes ~100 GB, so use
// BuildPlan rather than Build for this configuration.
func PaperObservation() ObservationConfig {
	return ObservationConfig{
		NrStations:     150,
		NrTimesteps:    8192,
		NrChannels:     16,
		StartFrequency: 150e6,
		// One 195 kHz subband split into 16 channels: the imaging
		// step processes subbands independently (Fig. 2), so the
		// fractional bandwidth per plan is small.
		ChannelWidth:  12.2e3,
		GridSize:      2048,
		SubgridSize:   24,
		KernelSupport: 7,
		GridMargin:    64,
		ATermInterval: 256,
	}
}

// ErrInvalidConfig marks every ObservationConfig validation failure;
// match it with errors.Is. The concrete error is a *ConfigError
// naming the offending field.
var ErrInvalidConfig = errors.New("repro: invalid observation config")

// ConfigError is a typed configuration rejection: which field is
// wrong and why. It unwraps to ErrInvalidConfig. The facade returns
// it for negative or nonsensical knobs instead of silently clamping
// them deep in the scheduler.
type ConfigError struct {
	// Field is the ObservationConfig field name.
	Field string
	// Reason explains the rejection.
	Reason string
}

// Error formats the rejection.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("repro: invalid %s: %s", e.Field, e.Reason)
}

// Unwrap makes every ConfigError match ErrInvalidConfig.
func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// Validate checks the configuration.
func (c *ObservationConfig) Validate() error {
	switch {
	case c.NrStations < 2:
		return &ConfigError{Field: "NrStations", Reason: fmt.Sprintf("need >= 2 stations, got %d", c.NrStations)}
	case c.NrTimesteps < 1 || c.NrChannels < 1:
		return &ConfigError{Field: "NrTimesteps", Reason: fmt.Sprintf("empty observation %dx%d", c.NrTimesteps, c.NrChannels)}
	case c.StartFrequency <= 0 || c.ChannelWidth < 0:
		return &ConfigError{Field: "StartFrequency", Reason: fmt.Sprintf("bad subband %g/%g", c.StartFrequency, c.ChannelWidth)}
	case c.GridMargin < 0 || c.GridMargin >= c.GridSize/2:
		return &ConfigError{Field: "GridMargin", Reason: fmt.Sprintf("bad grid margin %d", c.GridMargin)}
	case c.GridShards < 0:
		return &ConfigError{Field: "GridShards", Reason: fmt.Sprintf("negative shard count %d", c.GridShards)}
	case c.GridShards > c.GridSize:
		return &ConfigError{Field: "GridShards", Reason: fmt.Sprintf("%d shards exceed the %d-row grid", c.GridShards, c.GridSize)}
	case c.MaxInflightChunks < 0:
		return &ConfigError{Field: "MaxInflightChunks", Reason: fmt.Sprintf("negative in-flight bound %d", c.MaxInflightChunks)}
	case c.CheckpointEvery < 0:
		return &ConfigError{Field: "CheckpointEvery", Reason: fmt.Sprintf("negative checkpoint period %d", c.CheckpointEvery)}
	case c.CheckpointEvery > 0 && c.CheckpointDir == "":
		return &ConfigError{Field: "CheckpointEvery", Reason: "set without CheckpointDir"}
	}
	return nil
}

// Frequencies returns the channel center frequencies.
func (c *ObservationConfig) Frequencies() []float64 {
	f := make([]float64, c.NrChannels)
	for i := range f {
		f[i] = c.StartFrequency + float64(i)*c.ChannelWidth
	}
	return f
}

// Observation bundles everything needed to run the IDG pipelines on a
// synthetic observation.
type Observation struct {
	Config    ObservationConfig
	Stations  []Station
	Simulator *uvwsim.Simulator
	Plan      *Plan
	Kernels   *Kernels
	// Vis is nil until FillFromModel or AllocateVisibilities is
	// called (the full paper set would need ~100 GB).
	Vis *VisibilitySet
	// ImageSize is the derived field of view in direction cosines.
	ImageSize float64
}

// BuildPlan constructs stations, uvw simulator, execution plan and
// kernels, but no visibility storage.
func (c ObservationConfig) BuildPlan() (*Observation, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	lcfg := layout.SKA1LowConfig()
	lcfg.NrStations = c.NrStations
	if c.CoreOnly {
		lcfg.CoreFraction = 1.0
	}
	stations := layout.Generate(lcfg)
	opts := uvwsim.DefaultOptions()
	if c.HourAngleStartDeg != 0 {
		opts.HourAngleStartDeg = c.HourAngleStartDeg
	}
	sim := uvwsim.New(stations, opts)

	freqs := c.Frequencies()
	maxFreq := freqs[len(freqs)-1]
	maxUV := sim.MaxUV(c.NrTimesteps) * maxFreq / uvwsim.SpeedOfLight
	imageSize := float64(c.GridSize/2-c.GridMargin) / maxUV

	pcfg := PlanConfig{
		GridSize:               c.GridSize,
		SubgridSize:            c.SubgridSize,
		ImageSize:              imageSize,
		Frequencies:            freqs,
		KernelSupport:          c.KernelSupport,
		MaxTimestepsPerSubgrid: c.MaxTimestepsPerSubgrid,
		ATermUpdateInterval:    c.ATermInterval,
		WStepLambda:            c.WStepLambda,
	}
	baselines := sim.Baselines()
	p, err := plan.NewStreaming(pcfg, len(baselines), c.NrTimesteps,
		func(b int, buf []UVW) []UVW {
			return sim.BaselineTrack(baselines[b], 0, c.NrTimesteps, buf)
		}, c.Workers)
	if err != nil {
		return nil, err
	}
	k, err := core.NewKernels(Params{
		GridSize:          c.GridSize,
		SubgridSize:       c.SubgridSize,
		ImageSize:         imageSize,
		Frequencies:       freqs,
		Workers:           c.Workers,
		Precision:         c.Precision,
		GridShards:        c.GridShards,
		MaxInflightChunks: c.MaxInflightChunks,
		CheckpointDir:     c.CheckpointDir,
		CheckpointEvery:   c.CheckpointEvery,
		Observer:          c.Observer,
	})
	if err != nil {
		return nil, err
	}
	return &Observation{
		Config:    c,
		Stations:  stations,
		Simulator: sim,
		Plan:      p,
		Kernels:   k,
		ImageSize: imageSize,
	}, nil
}

// Build is BuildPlan plus visibility storage allocation.
func (c ObservationConfig) Build() (*Observation, error) {
	obs, err := c.BuildPlan()
	if err != nil {
		return nil, err
	}
	if err := obs.AllocateVisibilities(); err != nil {
		return nil, err
	}
	return obs, nil
}

// AllocateVisibilities materializes the uvw tracks and zeroed
// visibility storage.
func (o *Observation) AllocateVisibilities() error {
	if o.Vis != nil {
		return nil
	}
	tracks := o.Simulator.AllTracks(o.Config.NrTimesteps)
	vs, err := core.NewVisibilitySet(o.Simulator.Baselines(), tracks, o.Config.NrChannels)
	if err != nil {
		return err
	}
	o.Vis = vs
	return nil
}

// FillFromModel fills the visibilities with exact direct predictions
// of a point-source model (the ground-truth workload generator).
func (o *Observation) FillFromModel(model SkyModel) error {
	if err := o.AllocateVisibilities(); err != nil {
		return err
	}
	freqs := o.Config.Frequencies()
	for b := range o.Vis.Data {
		for t := 0; t < o.Vis.NrTimesteps; t++ {
			coord := o.Vis.UVW[b][t]
			for ch := 0; ch < o.Vis.NrChannels; ch++ {
				sc := coord.Scale(freqs[ch])
				o.Vis.Data[b][t*o.Vis.NrChannels+ch] = model.Predict(sc.U, sc.V, sc.W)
			}
		}
	}
	return nil
}

// FillFromModelPlan predicts only the visibility blocks the current
// plan covers. It is the distributed worker's fill path: after the
// plan is filtered to one partition, the worker predicts just its
// partition's samples — per-worker fill cost shrinks with the
// partition instead of staying proportional to the full observation.
// Covered samples get bit-identical values to FillFromModel's (the
// prediction is per-sample); uncovered samples stay zero, and the
// gridding pass never reads them.
func (o *Observation) FillFromModelPlan(model SkyModel) error {
	if err := o.AllocateVisibilities(); err != nil {
		return err
	}
	freqs := o.Config.Frequencies()
	for i := range o.Plan.Items {
		it := &o.Plan.Items[i]
		for t := it.TimeStart; t < it.TimeStart+it.NrTimesteps; t++ {
			coord := o.Vis.UVW[it.Baseline][t]
			for ch := it.Channel0; ch < it.Channel0+it.NrChannels; ch++ {
				sc := coord.Scale(freqs[ch])
				o.Vis.Data[it.Baseline][t*o.Vis.NrChannels+ch] = model.Predict(sc.U, sc.V, sc.W)
			}
		}
	}
	return nil
}

// GridAll grids every visibility onto a fresh grid and returns it
// with the stage times. The context cancels or deadline-bounds the
// run; item failures fail fast — see GridAllFT for other policies.
func (o *Observation) GridAll(ctx context.Context, prov ATermProvider) (*Grid, StageTimes, error) {
	if o.Vis == nil {
		return nil, StageTimes{}, fmt.Errorf("repro: visibilities not allocated")
	}
	g := grid.NewGrid(o.Config.GridSize)
	times, err := o.Kernels.GridVisibilities(ctx, o.Plan, o.Vis, prov, g)
	return g, times, err
}

// GridAllFT is GridAll under an explicit fault-tolerance policy; it
// additionally returns the degradation report.
func (o *Observation) GridAllFT(ctx context.Context, prov ATermProvider, ft FaultConfig) (*Grid, StageTimes, *FaultReport, error) {
	if o.Vis == nil {
		return nil, StageTimes{}, nil, fmt.Errorf("repro: visibilities not allocated")
	}
	g := grid.NewGrid(o.Config.GridSize)
	times, rep, err := o.Kernels.GridVisibilitiesFT(ctx, o.Plan, o.Vis, prov, g, ft)
	return g, times, rep, err
}

// DegridAll predicts visibilities for the given uv grid, overwriting
// the observation's visibility data, and returns the stage times.
func (o *Observation) DegridAll(ctx context.Context, prov ATermProvider, g *Grid) (StageTimes, error) {
	if o.Vis == nil {
		return StageTimes{}, fmt.Errorf("repro: visibilities not allocated")
	}
	return o.Kernels.DegridVisibilities(ctx, o.Plan, o.Vis, prov, g)
}

// DegridAllFT is DegridAll under an explicit fault-tolerance policy.
func (o *Observation) DegridAllFT(ctx context.Context, prov ATermProvider, g *Grid, ft FaultConfig) (StageTimes, *FaultReport, error) {
	if o.Vis == nil {
		return StageTimes{}, nil, fmt.Errorf("repro: visibilities not allocated")
	}
	return o.Kernels.DegridVisibilitiesFT(ctx, o.Plan, o.Vis, prov, g, ft)
}

// DirtyImage grids the visibilities and converts the result into a
// normalized, taper-corrected sky image.
func (o *Observation) DirtyImage(ctx context.Context, prov ATermProvider) (*Grid, error) {
	g, _, err := o.GridAll(ctx, prov)
	if err != nil {
		return nil, err
	}
	img := core.GridToImage(g, o.Config.Workers)
	st := o.Plan.Stats()
	core.ScaleImage(img, float64(o.Config.GridSize*o.Config.GridSize)/float64(st.NrGriddedVisibilities))
	core.ApplyTaperCorrection(img, o.Kernels.TaperCorrection(o.Config.GridSize))
	return img, nil
}

// StokesI extracts the Stokes I plane of an image.
func StokesI(img *Grid) []float64 { return sky.StokesI(img) }
