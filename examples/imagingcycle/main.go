// Imaging cycle: the full loop of Fig. 2 in the paper — image
// (gridding + inverse FFT), extract sources with CLEAN, predict
// (FFT + degridding), subtract, and show that the residual shrinks
// each major cycle. This is how IDG is used inside an imager such as
// WSClean.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultObservation()
	cfg.NrStations = 16
	cfg.NrTimesteps = 96
	cfg.NrChannels = 4
	cfg.GridSize = 512
	cfg.GridMargin = 32

	obs, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	n := cfg.GridSize
	pixel := obs.ImageSize / float64(n)

	// The hidden sky the telescope observes.
	truth := repro.SkyModel{
		{L: 40 * pixel, M: -28 * pixel, I: 1.0},
		{L: -64 * pixel, M: 44 * pixel, I: 0.55},
	}
	if err := obs.FillFromModel(truth); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The PSF is needed by CLEAN's minor cycles.
	psf, err := obs.PSF(ctx)
	if err != nil {
		log.Fatal(err)
	}

	skyModel := repro.SkyModel{}
	for major := 1; major <= 3; major++ {
		// Image the current residual visibilities.
		dirty, err := obs.DirtyImage(ctx, nil)
		if err != nil {
			log.Fatal(err)
		}
		si := repro.StokesI(dirty)

		peak := 0.0
		for _, v := range si {
			if v > peak {
				peak = v
			}
		}
		fmt.Printf("major cycle %d: residual image peak %.4f Jy\n", major, peak)
		if peak < 0.05 {
			break
		}

		// Minor cycles: extract the brightest emission.
		res, err := repro.Hogbom(si, psf, n, repro.CleanParams{
			Gain: 0.2, MaxIterations: 150, Threshold: 0.3 * peak,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range res.MergedComponents() {
			l, m := repro.PixelToLM(c.X, c.Y, n, obs.ImageSize)
			skyModel = append(skyModel, repro.PointSource{L: l, M: m, I: c.Flux})
		}
		fmt.Printf("  CLEAN: %d iterations, %d components, model total %.3f Jy\n",
			res.Iterations, len(res.MergedComponents()), skyModel.TotalFlux())

		// Predict the model (FFT + degridding) and subtract it from
		// the data, revealing fainter structure.
		modelImg := skyModel.Rasterize(n, obs.ImageSize)
		mg := repro.ImageToGrid(modelImg, 0)
		predicted, err := repro.NewVisibilitySet(obs.Vis.Baselines, obs.Vis.UVW, obs.Vis.NrChannels)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := obs.Kernels.DegridVisibilities(ctx, obs.Plan, predicted, nil, mg); err != nil {
			log.Fatal(err)
		}
		// Reset data to truth minus full model each cycle.
		if err := obs.FillFromModel(truth); err != nil {
			log.Fatal(err)
		}
		for b := range obs.Vis.Data {
			for i := range obs.Vis.Data[b] {
				obs.Vis.Data[b][i] = obs.Vis.Data[b][i].Sub(predicted.Data[b][i])
			}
		}
	}

	fmt.Printf("\nfinal sky model (%d components, %.3f Jy; truth %.3f Jy):\n",
		len(skyModel), skyModel.TotalFlux(), truth.TotalFlux())
	for _, s := range truth {
		x, y := repro.LMToPixel(s.L, s.M, n, obs.ImageSize)
		recovered := 0.0
		for _, c := range skyModel {
			cx, cy := repro.LMToPixel(c.L, c.M, n, obs.ImageSize)
			if abs(cx-x) <= 1 && abs(cy-y) <= 1 {
				recovered += c.I
			}
		}
		fmt.Printf("  true %.2f Jy at (%d,%d): recovered %.3f Jy\n", s.I, x, y, recovered)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
