package distrib

import (
	"testing"

	"repro/internal/grid"
)

// partialGrids builds n deterministic partials whose sum is known.
func partialGrids(n, size int) []*grid.Grid {
	gs := make([]*grid.Grid, n)
	for i := range gs {
		gs[i] = grid.NewGrid(size)
		for c := 0; c < grid.NrCorrelations; c++ {
			for j := range gs[i].Data[c] {
				gs[i].Data[c][j] = complex(float64(i+1)*0.1, float64(j%7)*float64(i+1))
			}
		}
	}
	return gs
}

// TestTreeReduceDeterministic runs the reduction many times over
// clones of the same partials (including non-power-of-two counts) and
// requires bit-identical results every time: the tree's associativity
// is fixed by index, not by goroutine scheduling.
func TestTreeReduceDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		src := partialGrids(n, 16)
		clone := func() []*grid.Grid {
			gs := make([]*grid.Grid, len(src))
			for i := range src {
				gs[i] = src[i].Clone()
			}
			return gs
		}
		want := FingerprintOf(TreeReduce(clone()))
		for rep := 0; rep < 20; rep++ {
			if got := FingerprintOf(TreeReduce(clone())); got != want {
				t.Fatalf("n=%d: reduction %d hashed differently", n, rep)
			}
		}
	}
}

// TestTreeReduceMatchesSerialSum checks the reduced grid is the sum of
// its partials to reassociation tolerance (exact here: the test
// values sum without rounding at any tree shape is not guaranteed, so
// compare against the serial left-fold with a 1e-12 relative bound).
func TestTreeReduceMatchesSerialSum(t *testing.T) {
	src := partialGrids(5, 16)
	serial := src[0].Clone()
	for _, g := range src[1:] {
		serial.AddGrid(g)
	}
	reduced := TreeReduce(src) // consumes src
	fp := FingerprintOf(serial)
	if d := reduced.MaxAbsDiff(serial); d > 1e-12*fp.PeakAbs {
		t.Fatalf("tree reduction differs from serial sum by %g (peak %g)", d, fp.PeakAbs)
	}
}

// TestTreeReduceNilEntries checks workers that contributed nothing
// (nil partials) vanish from the sum instead of panicking.
func TestTreeReduceNilEntries(t *testing.T) {
	src := partialGrids(3, 8)
	want := src[0].Clone()
	want.AddGrid(src[2])
	gs := []*grid.Grid{src[0], nil, src[2], nil}
	got := TreeReduce(gs)
	if got == nil || got.MaxAbsDiff(want) != 0 {
		t.Fatal("nil partials changed the reduction")
	}
	if TreeReduce([]*grid.Grid{nil, nil}) != nil {
		t.Fatal("all-nil reduction should be nil")
	}
	if TreeReduce(nil) != nil {
		t.Fatal("empty reduction should be nil")
	}
}
