package grid

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// rowBytes is the wire size of one grid row of one correlation plane:
// N complex128 values as little-endian float64 (re, im) pairs.
func (sh *Sharded) rowBytes() int { return 16 * sh.g.N }

// BandBytes returns the wire size of shard i's row band across all
// correlation planes, as written by WriteBand.
func (sh *Sharded) BandBytes(i int) int {
	lo, hi := sh.Bounds(i)
	return NrCorrelations * (hi - lo) * sh.rowBytes()
}

// WriteBand serializes shard i's row band — all correlation planes,
// rows [lo, hi), each value as little-endian float64 (re, im) — to w,
// holding the shard's lock so the bytes are coherent with concurrent
// adders. The encoding is exact: float64 bit patterns round-trip
// unchanged, which is what lets a restored grid hash identically to
// the one that was saved.
func (sh *Sharded) WriteBand(w io.Writer, i int) error {
	lo, hi := sh.Bounds(i)
	st := &sh.shards[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	buf := make([]byte, sh.rowBytes())
	for c := 0; c < NrCorrelations; c++ {
		for y := lo; y < hi; y++ {
			row := sh.g.Data[c][y*sh.g.N : (y+1)*sh.g.N]
			for x, v := range row {
				binary.LittleEndian.PutUint64(buf[16*x:], math.Float64bits(real(v)))
				binary.LittleEndian.PutUint64(buf[16*x+8:], math.Float64bits(imag(v)))
			}
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("grid: write band %d row %d: %w", i, y, err)
			}
		}
	}
	return nil
}

// ReadBand restores shard i's row band from r (the inverse of
// WriteBand), holding the shard's lock. A short read returns the
// underlying error.
func (sh *Sharded) ReadBand(r io.Reader, i int) error {
	lo, hi := sh.Bounds(i)
	st := &sh.shards[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	buf := make([]byte, sh.rowBytes())
	for c := 0; c < NrCorrelations; c++ {
		for y := lo; y < hi; y++ {
			if _, err := io.ReadFull(r, buf); err != nil {
				return fmt.Errorf("grid: read band %d row %d: %w", i, y, err)
			}
			row := sh.g.Data[c][y*sh.g.N : (y+1)*sh.g.N]
			for x := range row {
				re := math.Float64frombits(binary.LittleEndian.Uint64(buf[16*x:]))
				im := math.Float64frombits(binary.LittleEndian.Uint64(buf[16*x+8:]))
				row[x] = complex(re, im)
			}
		}
	}
	return nil
}
