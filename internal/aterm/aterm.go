// Package aterm models the direction-dependent effects (DDEs) the
// paper calls A-terms: per-station 2x2 Jones matrices that vary over
// the field of view and change slowly with time (the benchmark dataset
// updates them every 256 time steps). IDG applies them as plain
// per-pixel multiplications in the image domain, which is the central
// advantage over AW-projection.
package aterm

import (
	"fmt"
	"math"

	"repro/internal/xmath"
)

// Provider evaluates the Jones response of a station towards direction
// (l, m) during A-term slot. Implementations must be deterministic and
// safe for concurrent use.
type Provider interface {
	// Evaluate returns the Jones matrix of the given station for
	// A-term time slot and direction cosines (l, m).
	Evaluate(station, slot int, l, m float64) xmath.Matrix2
}

// Scheduler maps time steps to A-term slots: the paper updates the
// A-terms every UpdateInterval time steps.
type Scheduler struct {
	// UpdateInterval is the number of time steps per A-term slot
	// (256 in the paper's dataset).
	UpdateInterval int
}

// Slot returns the A-term slot index of time step t.
func (s Scheduler) Slot(t int) int {
	if s.UpdateInterval <= 0 {
		return 0
	}
	return t / s.UpdateInterval
}

// NrSlots returns the number of slots needed for nrTimesteps.
func (s Scheduler) NrSlots(nrTimesteps int) int {
	if s.UpdateInterval <= 0 {
		return 1
	}
	return (nrTimesteps + s.UpdateInterval - 1) / s.UpdateInterval
}

// Identity is the trivial provider: all stations respond with the unit
// matrix ("for simplicity, all set to identity", Section VI-A). The
// computational cost of IDG is unchanged, which is the point the paper
// makes about DDE corrections being nearly free.
type Identity struct{}

// Evaluate implements Provider.
func (Identity) Evaluate(int, int, float64, float64) xmath.Matrix2 {
	return xmath.Identity2()
}

// GaussianBeam models a station power beam: a real amplitude taper
// exp(-(l^2+m^2)/(2 sigma^2)) on both feeds, with a per-station,
// per-slot pointing wobble. Sigma is expressed in direction cosines.
type GaussianBeam struct {
	Sigma float64
	// Wobble is the pointing jitter amplitude in direction cosines;
	// station s in slot k points at a deterministic offset within
	// [-Wobble, Wobble]^2.
	Wobble float64
}

// Evaluate implements Provider.
func (g GaussianBeam) Evaluate(station, slot int, l, m float64) xmath.Matrix2 {
	if g.Sigma <= 0 {
		panic(fmt.Sprintf("aterm: GaussianBeam sigma must be positive, got %g", g.Sigma))
	}
	dl, dm := hash2(station, slot)
	l -= g.Wobble * dl
	m -= g.Wobble * dm
	a := math.Exp(-(l*l + m*m) / (2 * g.Sigma * g.Sigma))
	c := complex(a, 0)
	return xmath.Matrix2{c, 0, 0, c}
}

// PhaseScreen models ionospheric-like propagation: a per-station phase
// gradient over the field of view, exp(i*(a*l + b*m)), with gradients
// that drift from slot to slot. The gradient strength is expressed in
// radians per direction cosine.
type PhaseScreen struct {
	// Strength scales the phase gradients (radians per unit l).
	Strength float64
}

// Evaluate implements Provider.
func (p PhaseScreen) Evaluate(station, slot int, l, m float64) xmath.Matrix2 {
	a, b := hash2(station, slot)
	phase := p.Strength * (a*l + b*m)
	sin, cos := math.Sincos(phase)
	c := complex(cos, sin)
	return xmath.Matrix2{c, 0, 0, c}
}

// hash2 produces two deterministic values in [-1, 1] from a station
// and slot index (a cheap counter-mode hash; no package state).
func hash2(station, slot int) (float64, float64) {
	x := uint64(station)*0x9e3779b97f4a7c15 ^ uint64(slot)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	a := float64(x&0xffffffff)/float64(1<<31) - 1
	b := float64(x>>32)/float64(1<<31) - 1
	return a, b
}

// Map samples a provider over an n x n subgrid covering imageSize
// direction cosines; the result is indexed [y*n+x] and is what the
// apply_aterm step of Algorithms 1 and 2 consumes.
func Map(p Provider, station, slot, n int, imageSize float64) []xmath.Matrix2 {
	out := make([]xmath.Matrix2, n*n)
	scale := imageSize / float64(n)
	for y := 0; y < n; y++ {
		m := float64(y-n/2) * scale
		for x := 0; x < n; x++ {
			l := float64(x-n/2) * scale
			out[y*n+x] = p.Evaluate(station, slot, l, m)
		}
	}
	return out
}

// Cache memoizes Map results per (station, slot); the gridder reuses
// the same maps for every subgrid of a work group that shares the slot.
// Cache is not safe for concurrent writes; each worker builds its own
// or the caller prefills it before fanning out.
type Cache struct {
	provider  Provider
	n         int
	imageSize float64
	maps      map[[2]int][]xmath.Matrix2
}

// NewCache builds a cache for subgrids of size n covering imageSize.
func NewCache(p Provider, n int, imageSize float64) *Cache {
	return &Cache{
		provider:  p,
		n:         n,
		imageSize: imageSize,
		maps:      make(map[[2]int][]xmath.Matrix2),
	}
}

// Get returns the memoized A-term map for (station, slot).
func (c *Cache) Get(station, slot int) []xmath.Matrix2 {
	key := [2]int{station, slot}
	if m, ok := c.maps[key]; ok {
		return m
	}
	m := Map(c.provider, station, slot, c.n, c.imageSize)
	c.maps[key] = m
	return m
}
